// Package report renders Grade10 outputs for humans and downstream tooling:
// phase-type summaries, bottleneck tables, issue lists, ASCII utilization
// timelines, and CSV exports (the paper's component 10, result
// visualization, rendered as text).
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"

	"grade10/internal/bottleneck"
	"grade10/internal/core"
	"grade10/internal/explain"
	"grade10/internal/grade10"
	"grade10/internal/issues"
	"grade10/internal/vtime"
)

// TypeSummary aggregates all instances of one phase type.
type TypeSummary struct {
	TypePath string
	Count    int
	Total    vtime.Duration
	Mean     vtime.Duration
	Max      vtime.Duration
	// BlockedBy sums blocking time per resource across instances.
	BlockedBy map[string]vtime.Duration
}

// Summarize computes per-type phase statistics from a trace.
func Summarize(tr *core.ExecutionTrace) []TypeSummary {
	byType := map[string]*TypeSummary{}
	tr.Root.Walk(func(p *core.Phase) {
		if p.Type == nil {
			return
		}
		tp := p.Type.Path()
		ts, ok := byType[tp]
		if !ok {
			ts = &TypeSummary{TypePath: tp, BlockedBy: map[string]vtime.Duration{}}
			byType[tp] = ts
		}
		ts.Count++
		d := p.Duration()
		ts.Total += d
		if d > ts.Max {
			ts.Max = d
		}
		for _, b := range p.Blocked {
			ts.BlockedBy[b.Resource] += b.Duration()
		}
	})
	out := make([]TypeSummary, 0, len(byType))
	for _, ts := range byType {
		ts.Mean = ts.Total / vtime.Duration(ts.Count)
		out = append(out, *ts)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TypePath < out[j].TypePath })
	return out
}

// WriteSummary renders the phase-type table.
func WriteSummary(w io.Writer, out *grade10.Output) error {
	fmt.Fprintf(w, "execution span: %v .. %v (makespan %v, %d timeslices of %v)\n",
		out.Trace.Start, out.Trace.End, out.Trace.End.Sub(out.Trace.Start),
		out.Slices.Count, out.Slices.Width)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "PHASE TYPE\tCOUNT\tTOTAL\tMEAN\tMAX\tBLOCKED")
	for _, ts := range Summarize(out.Trace) {
		fmt.Fprintf(tw, "%s\t%d\t%v\t%v\t%v\t%s\n",
			ts.TypePath, ts.Count, ts.Total, ts.Mean, ts.Max, blockedString(ts.BlockedBy))
	}
	return tw.Flush()
}

func blockedString(m map[string]vtime.Duration) string {
	if len(m) == 0 {
		return "-"
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%v", k, m[k]))
	}
	return strings.Join(parts, " ")
}

// BottleneckRow aggregates bottlenecks of one (type, resource, kind).
type BottleneckRow struct {
	TypePath string
	Resource string
	Kind     bottleneck.Kind
	Phases   int
	Total    vtime.Duration
	// Intervals, EvStart and EvEnd summarize the triggering evidence across
	// the aggregated phases: total evidence intervals and the bounds of the
	// earliest and latest. ExplainQuery() turns them into a provenance
	// query that reproduces the verdict's inputs.
	Intervals int
	EvStart   vtime.Time
	EvEnd     vtime.Time
}

// ExplainQuery renders the provenance query resolving this row's evidence,
// for grade10 -explain or GET /explain?q=.
func (r BottleneckRow) ExplainQuery() string {
	q := explain.Query{Phase: r.TypePath, Resource: r.Resource}
	if r.EvEnd > r.EvStart {
		q.T0, q.T1, q.HasRange = r.EvStart, r.EvEnd, true
	}
	return q.String()
}

// AggregateBottlenecks groups the report by phase type.
func AggregateBottlenecks(rep *bottleneck.Report) []BottleneckRow {
	type key struct {
		tp, res string
		kind    bottleneck.Kind
	}
	agg := map[key]*BottleneckRow{}
	for _, b := range rep.Bottlenecks {
		tp := "?"
		if b.Phase.Type != nil {
			tp = b.Phase.Type.Path()
		}
		k := key{tp, b.Resource, b.Kind}
		row, ok := agg[k]
		if !ok {
			row = &BottleneckRow{TypePath: tp, Resource: b.Resource, Kind: b.Kind}
			agg[k] = row
		}
		row.Phases++
		row.Total += b.Time
		row.Intervals += b.Intervals
		if b.EvEnd > b.EvStart {
			if row.EvEnd <= row.EvStart || b.EvStart < row.EvStart {
				row.EvStart = b.EvStart
			}
			if b.EvEnd > row.EvEnd {
				row.EvEnd = b.EvEnd
			}
		}
	}
	out := make([]BottleneckRow, 0, len(agg))
	for _, r := range agg {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Total > out[j].Total })
	return out
}

// WriteBottlenecks renders the aggregated bottleneck table.
func WriteBottlenecks(w io.Writer, out *grade10.Output) error {
	rows := AggregateBottlenecks(out.Bottlenecks)
	if len(rows) == 0 {
		fmt.Fprintln(w, "no bottlenecks detected")
		return nil
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "PHASE TYPE\tRESOURCE\tKIND\tPHASES\tTOTAL TIME\tEVIDENCE")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%v\t%s\n", r.TypePath, r.Resource, r.Kind,
			r.Phases, r.Total, evidenceSummary(r))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "evidence pointers (paste into grade10 -explain '...' or GET /explain?q=...):")
	for _, r := range rows {
		fmt.Fprintf(w, "  %s\n", r.ExplainQuery())
	}
	return nil
}

// evidenceSummary renders the one-line evidence cell of a bottleneck row.
func evidenceSummary(r BottleneckRow) string {
	if r.Intervals == 0 {
		return "-"
	}
	return fmt.Sprintf("%d interval(s) %v..%v", r.Intervals, r.EvStart, r.EvEnd)
}

// WriteIssues renders the detected performance issues and outliers.
func WriteIssues(w io.Writer, out *grade10.Output) error {
	if len(out.Issues.Issues) == 0 {
		fmt.Fprintln(w, "no performance issues above threshold")
	}
	for _, is := range out.Issues.Issues {
		fmt.Fprintf(w, "[%s] %s\n", is.Kind, is.Describe())
		if line := issueEvidence(is); line != "" {
			fmt.Fprintf(w, "    %s\n", line)
		}
	}
	if len(out.Issues.Outliers) > 0 {
		fmt.Fprintf(w, "stragglers (%d):\n", len(out.Issues.Outliers))
		for _, o := range out.Issues.Outliers {
			fmt.Fprintf(w, "  %s: %.2fx its siblings, slows the step %.2fx\n",
				o.Phase.Path, o.Ratio, o.StepSlowdown)
		}
	}
	if u := out.Issues.Underutilization; u.Fraction > 0.05 {
		fmt.Fprintf(w, "underutilization: %.0f%% of the run is active but below %.0f%% on every resource (%v)\n",
			u.Fraction*100, u.Threshold*100, u.Time)
	}
	for _, b := range out.Issues.Burstiness {
		if b.CoV < 1.0 {
			continue // only report pronounced burstiness
		}
		fmt.Fprintf(w, "burstiness: %s varies strongly across timeslices (CoV %.2f, peak %.1fx mean)\n",
			b.InstanceKey, b.CoV, b.PeakToMean)
	}
	return nil
}

// issueEvidence renders an issue's replay-delta trail as a one-line
// evidence summary with a provenance query pointing at the most-affected
// phase type.
func issueEvidence(is issues.Issue) string {
	if len(is.Trail) == 0 {
		return ""
	}
	top := is.Trail[0]
	q := explain.Query{Phase: top.TypePath, Resource: is.Resource}
	return fmt.Sprintf("evidence: replay changed %d phase type(s); top %s (%d phases, Δ%v); explain: %s",
		len(is.Trail), top.TypePath, top.Phases, vtime.Duration(top.DeltaNS), q.String())
}

// sparkLevels are the eight block characters used for timelines.
var sparkLevels = []rune(" ▁▂▃▄▅▆▇█")

// Sparkline renders values scaled to [0, max] as unicode blocks.
func Sparkline(values []float64, max float64) string {
	if max <= 0 {
		max = 1
	}
	var sb strings.Builder
	for _, v := range values {
		idx := int(v / max * float64(len(sparkLevels)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkLevels) {
			idx = len(sparkLevels) - 1
		}
		sb.WriteRune(sparkLevels[idx])
	}
	return sb.String()
}

// WriteUtilization renders a per-resource-instance utilization timeline.
func WriteUtilization(w io.Writer, out *grade10.Output, maxColumns int) error {
	if maxColumns <= 0 {
		maxColumns = 80
	}
	for _, ip := range out.Profile.Instances {
		capacity := ip.Instance.Resource.Capacity
		vals := downsampleColumns(ip.Consumption, maxColumns)
		avg := 0.0
		for _, c := range ip.Consumption {
			avg += c
		}
		if out.Slices.Count > 0 {
			avg /= float64(out.Slices.Count)
		}
		fmt.Fprintf(w, "%-14s |%s| avg %5.1f%%\n",
			ip.Instance.Key(), Sparkline(vals, capacity), avg/capacity*100)
	}
	return nil
}

func downsampleColumns(vals []float64, cols int) []float64 {
	if len(vals) <= cols {
		return vals
	}
	out := make([]float64, cols)
	per := float64(len(vals)) / float64(cols)
	for i := 0; i < cols; i++ {
		lo := int(float64(i) * per)
		hi := int(float64(i+1) * per)
		if hi > len(vals) {
			hi = len(vals)
		}
		if hi <= lo {
			hi = lo + 1
		}
		sum := 0.0
		for _, v := range vals[lo:hi] {
			sum += v
		}
		out[i] = sum / float64(hi-lo)
	}
	return out
}

// WriteConsumptionCSV exports the upsampled per-slice consumption of every
// resource instance: one row per timeslice, one column per instance.
func WriteConsumptionCSV(w io.Writer, out *grade10.Output) error {
	cols := out.Profile.Instances
	fmt.Fprint(w, "slice,start_ns")
	for _, ip := range cols {
		fmt.Fprintf(w, ",%s", ip.Instance.Key())
	}
	fmt.Fprintln(w)
	for k := 0; k < out.Slices.Count; k++ {
		t0, _ := out.Slices.Bounds(k)
		fmt.Fprintf(w, "%d,%d", k, int64(t0))
		for _, ip := range cols {
			fmt.Fprintf(w, ",%.6g", ip.Consumption[k])
		}
		fmt.Fprintln(w)
	}
	return nil
}

// WriteAll renders the full report.
func WriteAll(w io.Writer, out *grade10.Output) error {
	if err := WriteSummary(w, out); err != nil {
		return err
	}
	fmt.Fprintln(w, "\n== phase timeline ==")
	if err := WriteTimeline(w, out, 80); err != nil {
		return err
	}
	fmt.Fprintln(w, "\n== resource utilization (upsampled) ==")
	if err := WriteUtilization(w, out, 80); err != nil {
		return err
	}
	fmt.Fprintln(w, "\n== replayed critical path ==")
	if err := WriteCriticalPath(w, out); err != nil {
		return err
	}
	fmt.Fprintln(w, "\n== bottlenecks ==")
	if err := WriteBottlenecks(w, out); err != nil {
		return err
	}
	fmt.Fprintln(w, "\n== performance issues ==")
	return WriteIssues(w, out)
}
