package report

import (
	"bytes"
	"strings"
	"testing"

	"grade10/internal/giraphsim"
	"grade10/internal/grade10"
	"grade10/internal/vtime"
	"grade10/internal/workload"
)

func sampleOutput(t *testing.T) *grade10.Output {
	t.Helper()
	cfg := giraphsim.DefaultConfig()
	cfg.Workers = 2
	cfg.ThreadsPerWorker = 4
	cfg.HeapCapacity = 1 << 20
	run, err := workload.RunGiraph(
		workload.Spec{Dataset: workload.Datasets()[0], Algorithm: "pagerank"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := run.Characterize(50*vtime.Millisecond, 10*vtime.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSummarize(t *testing.T) {
	out := sampleOutput(t)
	sums := Summarize(out.Trace)
	if len(sums) == 0 {
		t.Fatal("no summaries")
	}
	byType := map[string]TypeSummary{}
	for _, s := range sums {
		byType[s.TypePath] = s
		if s.Count <= 0 || s.Total < 0 || s.Mean > s.Max {
			t.Fatalf("bad summary %+v", s)
		}
	}
	ss := byType["/pagerank/execute/superstep"]
	if ss.Count != 8 {
		t.Fatalf("superstep count %d", ss.Count)
	}
	worker := byType["/pagerank/execute/superstep/worker"]
	if gc := worker.BlockedBy["gc"]; gc <= 0 {
		t.Fatalf("no gc blocking aggregated: %+v", worker)
	}
}

func TestWriteAllProducesSections(t *testing.T) {
	out := sampleOutput(t)
	var buf bytes.Buffer
	if err := WriteAll(&buf, out); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"execution span:", "PHASE TYPE", "resource utilization",
		"bottlenecks", "performance issues", "cpu@0",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("report missing %q:\n%s", want, text)
		}
	}
}

func TestAggregateBottlenecks(t *testing.T) {
	out := sampleOutput(t)
	rows := AggregateBottlenecks(out.Bottlenecks)
	if len(rows) == 0 {
		t.Fatal("no aggregated bottlenecks")
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1].Total < rows[i].Total {
			t.Fatal("rows not sorted by total time")
		}
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 0.5, 1}, 1)
	if len([]rune(s)) != 3 {
		t.Fatalf("sparkline %q", s)
	}
	runes := []rune(s)
	if runes[0] != ' ' || runes[2] != '█' {
		t.Fatalf("sparkline %q", s)
	}
	// Out-of-range values clamp.
	if Sparkline([]float64{5}, 1) != "█" {
		t.Fatal("clamp high failed")
	}
	if Sparkline([]float64{-1}, 1) != " " {
		t.Fatal("clamp low failed")
	}
	// Zero max defaults safely.
	if Sparkline([]float64{0.5}, 0) == "" {
		t.Fatal("zero max broke sparkline")
	}
}

func TestDownsampleColumns(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i)
	}
	out := downsampleColumns(vals, 10)
	if len(out) != 10 {
		t.Fatalf("%d columns", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i] <= out[i-1] {
			t.Fatal("averages not increasing")
		}
	}
	short := downsampleColumns(vals[:5], 10)
	if len(short) != 5 {
		t.Fatal("short input resampled")
	}
}

func TestWriteConsumptionCSV(t *testing.T) {
	out := sampleOutput(t)
	var buf bytes.Buffer
	if err := WriteConsumptionCSV(&buf, out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != out.Slices.Count+1 {
		t.Fatalf("%d lines, want %d", len(lines), out.Slices.Count+1)
	}
	if !strings.HasPrefix(lines[0], "slice,start_ns,") {
		t.Fatalf("header %q", lines[0])
	}
}

func TestWriteTimeline(t *testing.T) {
	out := sampleOutput(t)
	var buf bytes.Buffer
	if err := WriteTimeline(&buf, out, 60); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"/pagerank/execute/superstep/worker/compute/thread",
		"/pagerank/execute/superstep/worker/communicate",
		"per column",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("timeline missing %q:\n%s", want, text)
		}
	}
	// Every row line is bounded by the requested width.
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, "|") && len([]rune(line)) > 140 {
			t.Fatalf("row too wide: %q", line)
		}
	}
}

func TestWriteTimelineEmptyTrace(t *testing.T) {
	out := sampleOutput(t)
	// Simulate a degenerate span by truncating: use 0 columns default path.
	var buf bytes.Buffer
	if err := WriteTimeline(&buf, out, 0); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("no output")
	}
}

func TestWriteCriticalPath(t *testing.T) {
	out := sampleOutput(t)
	var buf bytes.Buffer
	if err := WriteCriticalPath(&buf, out); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, "/pagerank/") {
		t.Fatalf("critical path missing phases:\n%s", text)
	}
	if !strings.Contains(text, "%") {
		t.Fatalf("critical path missing shares:\n%s", text)
	}
}
