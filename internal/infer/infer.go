// Package infer implements the paper's §V ongoing work of reducing expert
// input: "using machine learning techniques to infer resource attribution
// rules". Given one execution trace and reasonably fine monitoring of a
// consumable resource, it fits per-phase-type demand coefficients by
// least squares —
//
//	consumption[k] ≈ Σ_type coef[type] · activity[type][k]
//
// over all timeslices k, where activity is the summed active fraction of the
// type's leaf instances. A coefficient is the resource amount one active
// instance of the type tends to consume, which is precisely the parameter of
// an Exact attribution rule; near-zero coefficients correspond to None
// rules. The fit is solved per machine and averaged, with coefficients
// clamped to be non-negative.
package infer

import (
	"fmt"
	"math"
	"sort"

	"grade10/internal/core"
	"grade10/internal/metrics"
	"grade10/internal/vtime"
)

// Coefficient is one inferred demand coefficient.
type Coefficient struct {
	// TypePath is the leaf phase type.
	TypePath string
	// Amount is the fitted per-instance demand in resource units.
	Amount float64
}

// Result is the inference output for one resource.
type Result struct {
	Resource     string
	Coefficients []Coefficient
}

// Options tunes the inference.
type Options struct {
	// Timeslice is the fitting granularity; it should match (or be a small
	// multiple of) the monitoring interval. Default 50ms.
	Timeslice vtime.Duration
	// NoneThreshold is the coefficient below which a type is reported as not
	// using the resource (a None rule), as a fraction of the largest fitted
	// coefficient. Default 0.05.
	NoneThreshold float64
}

// InferRules fits demand coefficients for one consumable resource from a
// trace and its per-machine monitoring samples (keyed by machine index; use
// core.GlobalMachine for a global resource).
func InferRules(tr *core.ExecutionTrace, resource string,
	monitoring map[int]*metrics.SampleSeries, opts Options) (*Result, error) {
	if opts.Timeslice <= 0 {
		opts.Timeslice = 50 * vtime.Millisecond
	}
	if opts.NoneThreshold <= 0 {
		opts.NoneThreshold = 0.05
	}
	if len(monitoring) == 0 {
		return nil, fmt.Errorf("infer: no monitoring data")
	}

	// Collect leaf types in a stable order.
	typeIndex := map[string]int{}
	var types []string
	for _, leaf := range tr.Leaves() {
		tp := leaf.Type.Path()
		if _, ok := typeIndex[tp]; !ok {
			typeIndex[tp] = len(types)
			types = append(types, tp)
		}
	}
	if len(types) == 0 {
		return nil, fmt.Errorf("infer: trace has no leaf phases")
	}
	n := len(types)
	slices := core.NewTimeslices(tr.Start, tr.End, opts.Timeslice)
	if slices.Count == 0 {
		return nil, fmt.Errorf("infer: empty trace span")
	}

	// Accumulate the normal equations AᵀA x = Aᵀb over all machines.
	ata := make([][]float64, n)
	for i := range ata {
		ata[i] = make([]float64, n)
	}
	atb := make([]float64, n)

	row := make([]float64, n)
	for machine, samples := range monitoring {
		truth := samples.ToSeries()
		for k := 0; k < slices.Count; k++ {
			t0, t1 := slices.Bounds(k)
			for i := range row {
				row[i] = 0
			}
			any := false
			for _, leaf := range tr.Leaves() {
				if machine != core.GlobalMachine && leaf.Machine != machine {
					continue
				}
				a := leaf.ActiveFraction(t0, t1)
				if a > 0 {
					row[typeIndex[leaf.Type.Path()]] += a
					any = true
				}
			}
			if !any {
				continue
			}
			b := truth.Average(t0, t1)
			for i := 0; i < n; i++ {
				if row[i] == 0 {
					continue
				}
				atb[i] += row[i] * b
				for j := 0; j < n; j++ {
					ata[i][j] += row[i] * row[j]
				}
			}
		}
	}

	coef, err := solveRidge(ata, atb, 1e-6)
	if err != nil {
		return nil, err
	}
	for i := range coef {
		if coef[i] < 0 {
			coef[i] = 0
		}
	}

	res := &Result{Resource: resource}
	for i, tp := range types {
		res.Coefficients = append(res.Coefficients, Coefficient{TypePath: tp, Amount: coef[i]})
	}
	sort.Slice(res.Coefficients, func(i, j int) bool {
		return res.Coefficients[i].TypePath < res.Coefficients[j].TypePath
	})
	return res, nil
}

// RuleSet converts the fit into attribution rules: coefficients below
// NoneThreshold of the maximum become None, the rest Exact(amount).
func (r *Result) RuleSet(opts Options) *core.RuleSet {
	if opts.NoneThreshold <= 0 {
		opts.NoneThreshold = 0.05
	}
	maxC := 0.0
	for _, c := range r.Coefficients {
		if c.Amount > maxC {
			maxC = c.Amount
		}
	}
	rules := core.NewRuleSet()
	for _, c := range r.Coefficients {
		if maxC > 0 && c.Amount < opts.NoneThreshold*maxC {
			rules.Set(c.TypePath, r.Resource, core.None())
		} else {
			rules.Set(c.TypePath, r.Resource, core.Exact(c.Amount))
		}
	}
	return rules
}

// Amount returns the fitted coefficient for a type path (0 if absent).
func (r *Result) Amount(typePath string) float64 {
	for _, c := range r.Coefficients {
		if c.TypePath == typePath {
			return c.Amount
		}
	}
	return 0
}

// solveRidge solves (AᵀA + λI) x = b by Gaussian elimination with partial
// pivoting; the ridge term keeps rank-deficient systems (types that never
// appear alone) solvable.
func solveRidge(ata [][]float64, atb []float64, lambda float64) ([]float64, error) {
	n := len(atb)
	m := make([][]float64, n)
	for i := 0; i < n; i++ {
		m[i] = make([]float64, n+1)
		copy(m[i], ata[i])
		m[i][i] += lambda
		m[i][n] = atb[i]
	}
	for col := 0; col < n; col++ {
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		m[col], m[pivot] = m[pivot], m[col]
		if math.Abs(m[col][col]) < 1e-12 {
			return nil, fmt.Errorf("infer: singular system at column %d", col)
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = m[i][n] / m[i][i]
	}
	return x, nil
}
