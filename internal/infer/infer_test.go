package infer

import (
	"math"
	"testing"

	"grade10/internal/cluster"
	"grade10/internal/core"
	"grade10/internal/enginelog"
	"grade10/internal/giraphsim"
	"grade10/internal/graph"
	"grade10/internal/metrics"
	"grade10/internal/vertexprog"
	"grade10/internal/vtime"
)

const sec = vtime.Second

func at(s int64) vtime.Time { return vtime.Time(s) * vtime.Time(sec) }

// Synthetic ground truth: two phase types with known per-instance demands
// (3 and 1 units); the fit must recover them.
func TestInferRecoversKnownCoefficients(t *testing.T) {
	root := core.NewRootType("job")
	root.Child("heavy", true)
	root.Child("light", true)
	model, err := core.NewExecutionModel(root)
	if err != nil {
		t.Fatal(err)
	}

	var now vtime.Time
	l := enginelog.NewLogger(func() vtime.Time { return now })
	emit := func(t0, t1 vtime.Time, path string) {
		now = t0
		l.StartPhase(path, -1)
		now = t1
		l.EndPhase(path)
	}
	now = at(0)
	l.StartPhase("/job", -1)
	// heavy alone [0,2), light alone [2,4), both [4,6).
	emit(at(0), at(2), "/job/heavy.0")
	emit(at(2), at(4), "/job/light.0")
	emit(at(4), at(6), "/job/heavy.1")
	emit(at(4), at(6), "/job/light.1")
	now = at(6)
	l.EndPhase("/job")
	tr, err := core.BuildExecutionTrace(l.Log(), model)
	if err != nil {
		t.Fatal(err)
	}

	// Consumption: 3 per heavy, 1 per light.
	truth := metrics.FromSteps(
		metrics.Point{T: at(0), V: 3},
		metrics.Point{T: at(2), V: 1},
		metrics.Point{T: at(4), V: 4},
		metrics.Point{T: at(6), V: 0},
	)
	samples := metrics.SampleSeriesOf(truth, at(0), at(6), 500*vtime.Millisecond)

	res, err := InferRules(tr, "cpu", map[int]*metrics.SampleSeries{
		core.GlobalMachine: samples,
	}, Options{Timeslice: 500 * vtime.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if h := res.Amount("/job/heavy"); math.Abs(h-3) > 0.05 {
		t.Fatalf("heavy coefficient %v, want 3", h)
	}
	if lgt := res.Amount("/job/light"); math.Abs(lgt-1) > 0.05 {
		t.Fatalf("light coefficient %v, want 1", lgt)
	}

	rules := res.RuleSet(Options{})
	if r := rules.Get("/job/heavy", "cpu"); r.Kind != core.RuleExact {
		t.Fatalf("heavy rule %+v", r)
	}
}

// The §V headline: inferring the Giraph compute-thread rule from a real run
// recovers "one active thread uses about one core" without any expert input.
func TestInferGiraphThreadRule(t *testing.T) {
	cfg := giraphsim.DefaultConfig()
	cfg.Workers = 2
	cfg.ThreadsPerWorker = 4
	cfg.OSNoiseCores = 0 // fit against clean ground truth
	g := graph.RMAT(11, 8, 42)
	part := graph.HashPartition(g, cfg.Workers)
	run, err := giraphsim.Run(vertexprog.NewPageRank(g, 0.85, 5), part, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Build the model only to parse the log (the rules are what we infer).
	models, err := giraphModels(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := core.BuildExecutionTrace(run.Log, models)
	if err != nil {
		t.Fatal(err)
	}

	monitoring := map[int]*metrics.SampleSeries{}
	for m := 0; m < cfg.Workers; m++ {
		truth, err := run.Cluster.GroundTruth(m, cluster.ResCPU)
		if err != nil {
			t.Fatal(err)
		}
		monitoring[m] = metrics.SampleSeriesOf(truth, run.Start, run.End, 10*vtime.Millisecond)
	}

	res, err := InferRules(tr, cluster.ResCPU, monitoring,
		Options{Timeslice: 10 * vtime.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	thread := res.Amount("/pagerank/execute/superstep/worker/compute/thread")
	if thread < 0.6 || thread > 1.4 {
		t.Fatalf("inferred thread demand %v cores, expected ≈1", thread)
	}
	// The barrier consumes nothing; its coefficient must be far below the
	// thread's.
	barrier := res.Amount("/pagerank/execute/superstep/worker/barrier")
	if barrier > 0.3*thread {
		t.Fatalf("barrier coefficient %v not negligible vs thread %v", barrier, thread)
	}
}

func giraphModels(cfg giraphsim.Config) (*core.ExecutionModel, error) {
	root := core.NewRootType("pagerank")
	root.Child("load", false).Child("worker", true)
	exec := root.Child("execute", false, "load")
	ss := exec.Child("superstep", true)
	ss.Sequential = true
	worker := ss.Child("worker", true)
	worker.Child("prepare", false)
	worker.Child("compute", false, "prepare").Child("thread", true)
	worker.Child("communicate", false, "prepare")
	worker.Child("barrier", false, "compute", "communicate")
	root.Child("write", false, "execute").Child("worker", true)
	return core.NewExecutionModel(root)
}

func TestInferValidation(t *testing.T) {
	root := core.NewRootType("job")
	root.Child("a", false)
	model, _ := core.NewExecutionModel(root)
	var now vtime.Time
	l := enginelog.NewLogger(func() vtime.Time { return now })
	l.StartPhase("/job", -1)
	l.StartPhase("/job/a", -1)
	now = at(1)
	l.EndPhase("/job/a")
	l.EndPhase("/job")
	tr, err := core.BuildExecutionTrace(l.Log(), model)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := InferRules(tr, "cpu", nil, Options{}); err == nil {
		t.Fatal("no monitoring accepted")
	}
}
