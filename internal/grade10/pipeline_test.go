package grade10

import (
	"bytes"
	"math"
	"testing"

	"grade10/internal/bottleneck"
	"grade10/internal/cluster"
	"grade10/internal/core"
	"grade10/internal/enginelog"
	"grade10/internal/giraphsim"
	"grade10/internal/graph"
	"grade10/internal/pgsim"
	"grade10/internal/vertexprog"
	"grade10/internal/vtime"
)

func giraphRun(t *testing.T) (*giraphsim.Result, giraphsim.Config) {
	t.Helper()
	cfg := giraphsim.DefaultConfig()
	cfg.Workers = 2
	cfg.ThreadsPerWorker = 4
	cfg.HeapCapacity = 1 << 20 // force GCs
	g := graph.RMAT(11, 8, 42)
	part := graph.HashPartition(g, cfg.Workers)
	res, err := giraphsim.Run(vertexprog.NewPageRank(g, 0.85, 5), part, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, cfg
}

func giraphParams(cfg giraphsim.Config) ModelParams {
	return ModelParams{
		Job:              "pagerank",
		Cores:            cfg.Machine.Cores,
		NetBandwidth:     cfg.Machine.NetBandwidth,
		ThreadsPerWorker: cfg.ThreadsPerWorker,
	}
}

func TestEndToEndGiraph(t *testing.T) {
	res, cfg := giraphRun(t)
	models, err := GiraphModel(giraphParams(cfg))
	if err != nil {
		t.Fatal(err)
	}
	monitoring, err := MonitorCluster(res.Cluster, res.Start, res.End, 50*vtime.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Characterize(Input{
		Log:        res.Log,
		Monitoring: monitoring,
		Models:     models,
		Timeslice:  10 * vtime.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The trace spans the run.
	if out.Trace.Start != res.Start || out.Trace.End != res.End {
		t.Fatalf("trace span [%v,%v), run [%v,%v)", out.Trace.Start, out.Trace.End, res.Start, res.End)
	}

	// CPU attribution conserves measured consumption on every machine.
	for m := 0; m < 2; m++ {
		ip := out.Profile.Get(cluster.ResCPU, m)
		if ip == nil {
			t.Fatalf("no cpu profile for machine %d", m)
		}
		measured := ip.Instance.Samples.TotalConsumption()
		upsampled := 0.0
		for k := 0; k < out.Slices.Count; k++ {
			upsampled += ip.Consumption[k] * out.Slices.SliceSeconds(k)
		}
		if math.Abs(measured-upsampled) > 1e-6*(1+measured) {
			t.Fatalf("machine %d: cpu mass %v vs %v", m, upsampled, measured)
		}
		if len(ip.Usage) == 0 {
			t.Fatalf("machine %d: no phases attributed cpu", m)
		}
	}

	// GC blocking bottlenecks must surface (tiny heap forced GCs).
	foundGC := false
	for _, b := range out.Bottlenecks.Bottlenecks {
		if b.Kind == bottleneck.Blocking && b.Resource == ResGC {
			foundGC = true
		}
	}
	if !foundGC {
		t.Fatal("no GC bottlenecks detected")
	}

	// Issues include a gc bottleneck-removal estimate.
	foundGCIssue := false
	for _, is := range out.Issues.Issues {
		if is.Resource == ResGC && is.Impact > 0 {
			foundGCIssue = true
		}
	}
	if !foundGCIssue {
		t.Fatalf("no gc issue; issues: %+v", out.Issues.Issues)
	}
}

func TestEndToEndGiraphViaSerializedLog(t *testing.T) {
	// The full file-based pipeline: serialize the log, parse it back,
	// characterize — identical results.
	res, cfg := giraphRun(t)
	var buf bytes.Buffer
	if err := enginelog.Write(&buf, res.Log); err != nil {
		t.Fatal(err)
	}
	parsed, err := enginelog.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	models, err := GiraphModel(giraphParams(cfg))
	if err != nil {
		t.Fatal(err)
	}
	monitoring, err := MonitorCluster(res.Cluster, res.Start, res.End, 50*vtime.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Characterize(Input{Log: res.Log, Monitoring: monitoring, Models: models})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Characterize(Input{Log: parsed, Monitoring: monitoring, Models: models})
	if err != nil {
		t.Fatal(err)
	}
	if a.Issues.Original != b.Issues.Original || len(a.Bottlenecks.Bottlenecks) != len(b.Bottlenecks.Bottlenecks) {
		t.Fatal("serialized log changed results")
	}
}

func TestEndToEndPowerGraph(t *testing.T) {
	cfg := pgsim.DefaultConfig()
	cfg.Workers = 2
	cfg.ThreadsPerWorker = 4
	g := graph.Community(graph.CommunityParams{
		Vertices: 1500, Communities: 10, IntraDegree: 5, InterFraction: 0.03, Seed: 4,
	})
	res, err := pgsim.Run(vertexprog.NewCDLP(g, 4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	models, err := PowerGraphModel(ModelParams{
		Job: "cdlp", Cores: cfg.Machine.Cores,
		NetBandwidth: cfg.Machine.NetBandwidth, ThreadsPerWorker: cfg.ThreadsPerWorker,
	})
	if err != nil {
		t.Fatal(err)
	}
	monitoring, err := MonitorCluster(res.Cluster, res.Start, res.End, 50*vtime.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Characterize(Input{Log: res.Log, Monitoring: monitoring, Models: models})
	if err != nil {
		t.Fatal(err)
	}
	// No GC or msgqueue bottlenecks in PowerGraph.
	for _, b := range out.Bottlenecks.Bottlenecks {
		if b.Resource == ResGC || b.Resource == ResMsgQueue {
			t.Fatalf("impossible bottleneck %q in PowerGraph", b.Resource)
		}
	}
	// Gather threads exist and received CPU attribution.
	gathers := out.Trace.PhasesOfType("/cdlp/execute/iteration/worker/gather/thread")
	if len(gathers) == 0 {
		t.Fatal("no gather thread phases")
	}
	attributed := false
	for _, ph := range gathers {
		ip := out.Profile.Get(cluster.ResCPU, ph.Machine)
		if ip != nil && ip.UsageOf(ph) != nil {
			attributed = true
			break
		}
	}
	if !attributed {
		t.Fatal("no gather thread received cpu attribution")
	}
}

func TestUntunedModelHasNoRules(t *testing.T) {
	m, err := GiraphModelUntuned(ModelParams{Job: "pagerank", Cores: 8, NetBandwidth: 1e8, ThreadsPerWorker: 8})
	if err != nil {
		t.Fatal(err)
	}
	tp := "/pagerank/execute/superstep/worker/compute/thread"
	if m.Rules.Explicit(tp, cluster.ResCPU) {
		t.Fatal("untuned model has explicit rules")
	}
	r := m.Rules.Get(tp, cluster.ResCPU)
	if r.Kind != core.RuleVariable || r.Amount != 1 {
		t.Fatalf("untuned default rule %+v", r)
	}
}

func TestFilterBlocking(t *testing.T) {
	log := &enginelog.Log{Events: []enginelog.Event{
		{Kind: enginelog.PhaseStart, Path: "/a"},
		{Kind: enginelog.Blocked, Path: "/a", Resource: "gc", End: 5},
		{Kind: enginelog.Blocked, Path: "/a", Resource: "barrier", End: 5},
		{Kind: enginelog.PhaseEnd, Path: "/a", Time: 10},
	}}
	out := FilterBlocking(log, "gc")
	if len(out.Events) != 3 {
		t.Fatalf("%d events", len(out.Events))
	}
	for _, e := range out.Events {
		if e.Kind == enginelog.Blocked && e.Resource == "gc" {
			t.Fatal("gc event survived filter")
		}
	}
	if len(log.Events) != 4 {
		t.Fatal("filter mutated the input")
	}
}

func TestCharacterizeValidation(t *testing.T) {
	if _, err := Characterize(Input{}); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestModelLookupCoversEngineLogs(t *testing.T) {
	// Every phase type the engines emit must resolve in the models.
	res, cfg := giraphRun(t)
	models, err := GiraphModel(giraphParams(cfg))
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range res.Log.Events {
		if ev.Kind == enginelog.PhaseStart {
			if models.Exec.LookupInstance(ev.Path) == nil {
				t.Fatalf("phase %q not in model", ev.Path)
			}
		}
	}
}

func TestDiskResourceEndToEnd(t *testing.T) {
	cfg := giraphsim.DefaultConfig()
	cfg.Workers = 2
	cfg.ThreadsPerWorker = 4
	cfg.Machine.DiskBandwidth = 20e6 // slow disk: load becomes disk-bound
	cfg.DiskBytesPerEdge = 256
	g := graph.RMAT(11, 8, 42)
	part := graph.HashPartition(g, cfg.Workers)
	res, err := giraphsim.Run(vertexprog.NewPageRank(g, 0.85, 3), part, cfg)
	if err != nil {
		t.Fatal(err)
	}
	models, err := GiraphModel(ModelParams{
		Job: "pagerank", Cores: cfg.Machine.Cores,
		NetBandwidth:     cfg.Machine.NetBandwidth,
		DiskBandwidth:    cfg.Machine.DiskBandwidth,
		ThreadsPerWorker: cfg.ThreadsPerWorker,
	})
	if err != nil {
		t.Fatal(err)
	}
	monitoring, err := MonitorCluster(res.Cluster, res.Start, res.End, 50*vtime.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Characterize(Input{
		Log: res.Log, Monitoring: monitoring, Models: models,
		// The disk read is one part of the load phase, so its utilization
		// averaged over the phase sits below full; a 85% threshold still
		// identifies the saturation clearly.
		BottleneckConfig: bottleneck.Config{SaturationThreshold: 0.85, ExactTolerance: 0.95},
	})
	if err != nil {
		t.Fatal(err)
	}

	// The disk instances exist and carry the load phase's bytes.
	loadWorkers := out.Trace.PhasesOfType("/pagerank/load/worker")
	if len(loadWorkers) != 2 {
		t.Fatalf("%d load workers", len(loadWorkers))
	}
	attributed := 0.0
	for _, lw := range loadWorkers {
		ip := out.Profile.Get(cluster.ResDisk, lw.Machine)
		if ip == nil {
			t.Fatalf("no disk profile for machine %d", lw.Machine)
		}
		if u := ip.UsageOf(lw); u != nil {
			attributed += u.Total(out.Slices)
		}
	}
	wantBytes := float64(g.NumEdges()) * cfg.DiskBytesPerEdge
	if attributed < 0.5*wantBytes {
		t.Fatalf("disk attribution %v bytes, expected most of %v", attributed, wantBytes)
	}

	// With a slow disk, load workers saturate it: a disk bottleneck exists.
	foundDisk := false
	for _, b := range out.Bottlenecks.Bottlenecks {
		if b.Resource == cluster.ResDisk && b.Phase.Type.Path() == "/pagerank/load/worker" {
			foundDisk = true
		}
	}
	if !foundDisk {
		t.Fatal("no disk bottleneck on load workers")
	}

	// Compute threads never get disk consumption (explicit None rules).
	threads := out.Trace.PhasesOfType("/pagerank/execute/superstep/worker/compute/thread")
	for _, th := range threads {
		if ip := out.Profile.Get(cluster.ResDisk, th.Machine); ip != nil && ip.UsageOf(th) != nil {
			t.Fatalf("thread %s attributed disk consumption", th.Path)
		}
	}
}
