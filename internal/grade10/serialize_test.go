package grade10

import (
	"bytes"
	"strings"
	"testing"

	"grade10/internal/cluster"
	"grade10/internal/core"
)

func params() ModelParams {
	return ModelParams{Job: "pagerank", Cores: 8, NetBandwidth: 1e8, ThreadsPerWorker: 8}
}

func TestModelsJSONRoundTripGiraph(t *testing.T) {
	orig, err := GiraphModel(params())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveModels(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := LoadModels(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Execution model: same type paths and flags.
	origPaths := orig.Exec.TypePaths()
	backPaths := back.Exec.TypePaths()
	if len(origPaths) != len(backPaths) {
		t.Fatalf("paths %v vs %v", origPaths, backPaths)
	}
	for i := range origPaths {
		if origPaths[i] != backPaths[i] {
			t.Fatalf("paths %v vs %v", origPaths, backPaths)
		}
		a, b := orig.Exec.Lookup(origPaths[i]), back.Exec.Lookup(backPaths[i])
		if a.Repeated != b.Repeated || a.Sequential != b.Sequential ||
			a.SyncGroup != b.SyncGroup || a.ElasticWaits != b.ElasticWaits {
			t.Fatalf("flags differ at %s: %+v vs %+v", origPaths[i], a, b)
		}
		if len(a.After) != len(b.After) {
			t.Fatalf("after differ at %s", origPaths[i])
		}
	}

	// Resources.
	if len(orig.Res.Resources()) != len(back.Res.Resources()) {
		t.Fatal("resource counts differ")
	}
	for _, r := range orig.Res.Resources() {
		got := back.Res.Lookup(r.Name)
		if got == nil || got.Kind != r.Kind || got.Capacity != r.Capacity ||
			got.PerMachine != r.PerMachine {
			t.Fatalf("resource %q differs: %+v vs %+v", r.Name, got, r)
		}
	}

	// Rules: explicit entries preserved, including the tuned thread rule.
	thread := "/pagerank/execute/superstep/worker/compute/thread"
	if r := back.Rules.Get(thread, cluster.ResCPU); r.Kind != core.RuleExact || r.Amount != 1 {
		t.Fatalf("thread rule %+v", r)
	}
	for _, tp := range origPaths {
		for _, res := range orig.Res.Resources() {
			if orig.Rules.Explicit(tp, res.Name) != back.Rules.Explicit(tp, res.Name) {
				t.Fatalf("explicitness differs at %s/%s", tp, res.Name)
			}
			if orig.Rules.Get(tp, res.Name) != back.Rules.Get(tp, res.Name) {
				t.Fatalf("rule differs at %s/%s", tp, res.Name)
			}
		}
	}
}

func TestModelsJSONRoundTripPowerGraph(t *testing.T) {
	orig, err := PowerGraphModel(ModelParams{Job: "cdlp", Cores: 8, NetBandwidth: 1e9, ThreadsPerWorker: 8})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveModels(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := LoadModels(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ex := back.Exec.Lookup("/cdlp/execute/iteration/worker/exchange")
	if ex == nil || !ex.SyncGroup {
		t.Fatal("exchange sync flag lost")
	}
	it := back.Exec.Lookup("/cdlp/execute/iteration")
	if it == nil || !it.Sequential || !it.Repeated {
		t.Fatal("iteration flags lost")
	}
}

func TestLoadModelsErrors(t *testing.T) {
	cases := map[string]string{
		"bad json":         `{`,
		"unknown field":    `{"bogus": 1}`,
		"bad kind":         `{"execution":{"name":"a"},"resources":[{"name":"cpu","kind":"fluid"}]}`,
		"bad rule kind":    `{"execution":{"name":"a"},"resources":[{"name":"cpu","kind":"blocking"}],"rules":[{"phase_type":"/a","resource":"cpu","kind":"fuzzy"}]}`,
		"unknown type":     `{"execution":{"name":"a"},"resources":[{"name":"cpu","kind":"blocking"}],"rules":[{"phase_type":"/b","resource":"cpu","kind":"none"}]}`,
		"unknown resource": `{"execution":{"name":"a"},"resources":[],"rules":[{"phase_type":"/a","resource":"cpu","kind":"none"}]}`,
		"zero capacity":    `{"execution":{"name":"a"},"resources":[{"name":"cpu","kind":"consumable"}]}`,
	}
	for name, in := range cases {
		if _, err := LoadModels(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestSavedModelsUsableEndToEnd(t *testing.T) {
	// Characterizing with round-tripped models must equal the direct ones.
	res, cfg := giraphRun(t)
	direct, err := GiraphModel(giraphParams(cfg))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveModels(&buf, direct); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModels(&buf)
	if err != nil {
		t.Fatal(err)
	}
	monitoring, err := MonitorCluster(res.Cluster, res.Start, res.End, 50000000)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Characterize(Input{Log: res.Log, Monitoring: monitoring, Models: direct})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Characterize(Input{Log: res.Log, Monitoring: monitoring, Models: loaded})
	if err != nil {
		t.Fatal(err)
	}
	if a.Issues.Original != b.Issues.Original ||
		len(a.Bottlenecks.Bottlenecks) != len(b.Bottlenecks.Bottlenecks) {
		t.Fatal("round-tripped models changed the analysis")
	}
}
