package grade10

import (
	"fmt"

	"grade10/internal/attribution"
	"grade10/internal/bottleneck"
	"grade10/internal/cluster"
	"grade10/internal/core"
	"grade10/internal/enginelog"
	"grade10/internal/issues"
	"grade10/internal/obs"
	"grade10/internal/vtime"
)

// Input bundles everything one characterization run consumes (the paper's
// Figure 1: monitoring + logs + models).
type Input struct {
	// Log is the engine's execution log.
	Log *enginelog.Log
	// Monitoring holds the coarse resource samples per machine resource.
	Monitoring []cluster.ResourceSamples
	// Models are the framework's expert inputs.
	Models Models
	// Timeslice is the analysis granularity (§III-C); default 10ms.
	Timeslice vtime.Duration
	// BottleneckConfig and IssueConfig tune detection; zero values take
	// defaults.
	BottleneckConfig bottleneck.Config
	IssueConfig      issues.Config
	// Parallelism is the worker count for the attribution fan-out and the
	// issue detector's trace replays. Output is identical for every value;
	// 0 takes par.Default() (GOMAXPROCS unless overridden).
	Parallelism int
	// Tracer collects self-trace spans for every pipeline stage (trace
	// build, resource trace assembly, attribution jobs, bottleneck scan,
	// issue replays). Nil disables self-tracing at zero cost.
	Tracer *obs.Tracer
	// Recorder receives provenance callbacks from the attribution pass for
	// the explain engine (internal/explain). Nil disables capture at zero
	// cost. Pass a literal nil, never a typed nil pointer.
	Recorder attribution.Recorder
}

// Output is the full performance profile of one execution.
type Output struct {
	Trace       *core.ExecutionTrace
	Slices      core.Timeslices
	Profile     *attribution.Profile
	Bottlenecks *bottleneck.Report
	Issues      *issues.Report
}

// DefaultTimeslice is the paper's "tens of milliseconds" granularity.
const DefaultTimeslice = 10 * vtime.Millisecond

// Characterize runs the full Grade10 pipeline: parse the log into an
// execution trace, assemble the resource trace from monitoring, attribute
// resources at timeslice granularity, and detect bottlenecks and issues.
func Characterize(in Input) (*Output, error) {
	if in.Log == nil {
		return nil, fmt.Errorf("grade10: no execution log")
	}
	if in.Timeslice == 0 {
		in.Timeslice = DefaultTimeslice
	}
	span := in.Tracer.StartSpan("build-execution-trace", -1)
	span.SetItems(int64(len(in.Log.Events)))
	tr, err := core.BuildExecutionTrace(in.Log, in.Models.Exec)
	span.End()
	if err != nil {
		return nil, fmt.Errorf("grade10: parsing log: %w", err)
	}

	span = in.Tracer.StartSpan("build-resource-trace", -1)
	span.SetItems(int64(len(in.Monitoring)))
	rt := core.NewResourceTrace()
	for _, rs := range in.Monitoring {
		res := in.Models.Res.Lookup(rs.Resource)
		if res == nil || res.Kind != core.Consumable {
			continue // monitored but not modeled: ignored, as in the paper
		}
		machine := rs.Machine
		if !res.PerMachine {
			machine = core.GlobalMachine
		}
		if err := rt.Add(res, machine, rs.Samples); err != nil {
			span.End()
			return nil, fmt.Errorf("grade10: resource trace: %w", err)
		}
	}
	span.End()

	slices := core.NewTimeslices(tr.Start, tr.End, in.Timeslice)
	span = in.Tracer.StartSpan("attribution", -1)
	span.SetItems(int64(slices.Count))
	span.SetWindow(int64(slices.Start), int64(slices.End))
	prof, err := attribution.AttributeWindowProv(tr, tr.Leaves(), rt, in.Models.Rules,
		slices, in.Parallelism, in.Tracer, in.Recorder)
	span.End()
	if err != nil {
		return nil, fmt.Errorf("grade10: attribution: %w", err)
	}

	span = in.Tracer.StartSpan("bottleneck-scan", -1)
	btl := bottleneck.Detect(prof, in.BottleneckConfig)
	span.SetItems(int64(len(btl.Bottlenecks)))
	span.End()

	if in.IssueConfig.Parallelism == 0 {
		in.IssueConfig.Parallelism = in.Parallelism
	}
	if in.IssueConfig.Tracer == nil {
		in.IssueConfig.Tracer = in.Tracer
	}
	span = in.Tracer.StartSpan("issue-analysis", -1)
	iss := issues.Analyze(prof, btl, in.IssueConfig)
	span.SetItems(int64(len(iss.Issues)))
	span.End()

	return &Output{Trace: tr, Slices: slices, Profile: prof, Bottlenecks: btl, Issues: iss}, nil
}

// FilterBlocking returns a copy of the log without blocking events on the
// named resources. Used to build "untuned" models that do not know about GC
// or queue stalls (Table II's untuned configuration).
func FilterBlocking(log *enginelog.Log, resources ...string) *enginelog.Log {
	drop := map[string]bool{}
	for _, r := range resources {
		drop[r] = true
	}
	out := &enginelog.Log{}
	for _, e := range log.Events {
		if e.Kind == enginelog.Blocked && drop[e.Resource] {
			continue
		}
		out.Events = append(out.Events, e)
	}
	return out
}

// MonitorCluster samples a finished run's cluster at the given interval over
// [start, end), producing the Monitoring input for Characterize.
func MonitorCluster(c *cluster.Cluster, start, end vtime.Time,
	interval vtime.Duration) ([]cluster.ResourceSamples, error) {
	return cluster.Monitor(c, start, end, interval)
}
