package grade10

import (
	"fmt"

	"grade10/internal/attribution"
	"grade10/internal/bottleneck"
	"grade10/internal/cluster"
	"grade10/internal/core"
	"grade10/internal/enginelog"
	"grade10/internal/issues"
	"grade10/internal/vtime"
)

// Input bundles everything one characterization run consumes (the paper's
// Figure 1: monitoring + logs + models).
type Input struct {
	// Log is the engine's execution log.
	Log *enginelog.Log
	// Monitoring holds the coarse resource samples per machine resource.
	Monitoring []cluster.ResourceSamples
	// Models are the framework's expert inputs.
	Models Models
	// Timeslice is the analysis granularity (§III-C); default 10ms.
	Timeslice vtime.Duration
	// BottleneckConfig and IssueConfig tune detection; zero values take
	// defaults.
	BottleneckConfig bottleneck.Config
	IssueConfig      issues.Config
	// Parallelism is the worker count for the attribution fan-out and the
	// issue detector's trace replays. Output is identical for every value;
	// 0 takes par.Default() (GOMAXPROCS unless overridden).
	Parallelism int
}

// Output is the full performance profile of one execution.
type Output struct {
	Trace       *core.ExecutionTrace
	Slices      core.Timeslices
	Profile     *attribution.Profile
	Bottlenecks *bottleneck.Report
	Issues      *issues.Report
}

// DefaultTimeslice is the paper's "tens of milliseconds" granularity.
const DefaultTimeslice = 10 * vtime.Millisecond

// Characterize runs the full Grade10 pipeline: parse the log into an
// execution trace, assemble the resource trace from monitoring, attribute
// resources at timeslice granularity, and detect bottlenecks and issues.
func Characterize(in Input) (*Output, error) {
	if in.Log == nil {
		return nil, fmt.Errorf("grade10: no execution log")
	}
	if in.Timeslice == 0 {
		in.Timeslice = DefaultTimeslice
	}
	tr, err := core.BuildExecutionTrace(in.Log, in.Models.Exec)
	if err != nil {
		return nil, fmt.Errorf("grade10: parsing log: %w", err)
	}

	rt := core.NewResourceTrace()
	for _, rs := range in.Monitoring {
		res := in.Models.Res.Lookup(rs.Resource)
		if res == nil || res.Kind != core.Consumable {
			continue // monitored but not modeled: ignored, as in the paper
		}
		machine := rs.Machine
		if !res.PerMachine {
			machine = core.GlobalMachine
		}
		if err := rt.Add(res, machine, rs.Samples); err != nil {
			return nil, fmt.Errorf("grade10: resource trace: %w", err)
		}
	}

	slices := core.NewTimeslices(tr.Start, tr.End, in.Timeslice)
	prof, err := attribution.AttributeN(tr, rt, in.Models.Rules, slices, in.Parallelism)
	if err != nil {
		return nil, fmt.Errorf("grade10: attribution: %w", err)
	}
	btl := bottleneck.Detect(prof, in.BottleneckConfig)
	if in.IssueConfig.Parallelism == 0 {
		in.IssueConfig.Parallelism = in.Parallelism
	}
	iss := issues.Analyze(prof, btl, in.IssueConfig)

	return &Output{Trace: tr, Slices: slices, Profile: prof, Bottlenecks: btl, Issues: iss}, nil
}

// FilterBlocking returns a copy of the log without blocking events on the
// named resources. Used to build "untuned" models that do not know about GC
// or queue stalls (Table II's untuned configuration).
func FilterBlocking(log *enginelog.Log, resources ...string) *enginelog.Log {
	drop := map[string]bool{}
	for _, r := range resources {
		drop[r] = true
	}
	out := &enginelog.Log{}
	for _, e := range log.Events {
		if e.Kind == enginelog.Blocked && drop[e.Resource] {
			continue
		}
		out.Events = append(out.Events, e)
	}
	return out
}

// MonitorCluster samples a finished run's cluster at the given interval over
// [start, end), producing the Monitoring input for Characterize.
func MonitorCluster(c *cluster.Cluster, start, end vtime.Time,
	interval vtime.Duration) ([]cluster.ResourceSamples, error) {
	return cluster.Monitor(c, start, end, interval)
}
