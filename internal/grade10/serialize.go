package grade10

import (
	"encoding/json"
	"fmt"
	"io"

	"grade10/internal/core"
)

// Models serialize to JSON so that expert input can be defined once, checked
// into a repository, and shared across users and tools (§III-B: "defined
// once, typically by a domain expert... reused by many users").

type phaseTypeJSON struct {
	Name         string          `json:"name"`
	Repeated     bool            `json:"repeated,omitempty"`
	Sequential   bool            `json:"sequential,omitempty"`
	SyncGroup    bool            `json:"sync_group,omitempty"`
	ElasticWaits bool            `json:"elastic_waits,omitempty"`
	After        []string        `json:"after,omitempty"`
	Children     []phaseTypeJSON `json:"children,omitempty"`
}

type resourceJSON struct {
	Name       string  `json:"name"`
	Kind       string  `json:"kind"` // "consumable" or "blocking"
	Capacity   float64 `json:"capacity,omitempty"`
	PerMachine bool    `json:"per_machine,omitempty"`
}

type ruleJSON struct {
	PhaseType string  `json:"phase_type"`
	Resource  string  `json:"resource"`
	Kind      string  `json:"kind"` // "none", "exact", "variable"
	Amount    float64 `json:"amount,omitempty"`
}

type modelsJSON struct {
	Execution phaseTypeJSON  `json:"execution"`
	Resources []resourceJSON `json:"resources"`
	Rules     []ruleJSON     `json:"rules"`
}

// SaveModels writes the models as JSON.
func SaveModels(w io.Writer, m Models) error {
	doc := modelsJSON{Execution: encodePhaseType(m.Exec.Root)}
	for _, r := range m.Res.Resources() {
		doc.Resources = append(doc.Resources, resourceJSON{
			Name: r.Name, Kind: r.Kind.String(), Capacity: r.Capacity, PerMachine: r.PerMachine,
		})
	}
	doc.Rules = encodeRules(m)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func encodePhaseType(t *core.PhaseType) phaseTypeJSON {
	out := phaseTypeJSON{
		Name: t.Name, Repeated: t.Repeated, Sequential: t.Sequential,
		SyncGroup: t.SyncGroup, ElasticWaits: t.ElasticWaits, After: t.After,
	}
	for _, c := range t.Children() {
		out.Children = append(out.Children, encodePhaseType(c))
	}
	return out
}

// encodeRules walks every (type, resource) pair and emits the explicit ones.
func encodeRules(m Models) []ruleJSON {
	var out []ruleJSON
	for _, tp := range m.Exec.TypePaths() {
		for _, r := range m.Res.Resources() {
			if !m.Rules.Explicit(tp, r.Name) {
				continue
			}
			rule := m.Rules.Get(tp, r.Name)
			out = append(out, ruleJSON{
				PhaseType: tp, Resource: r.Name,
				Kind: rule.Kind.String(), Amount: rule.Amount,
			})
		}
	}
	return out
}

// LoadModels parses models written by SaveModels.
func LoadModels(r io.Reader) (Models, error) {
	var doc modelsJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return Models{}, fmt.Errorf("grade10: parsing models: %w", err)
	}

	root, err := decodePhaseType(doc.Execution, nil)
	if err != nil {
		return Models{}, err
	}
	exec, err := core.NewExecutionModel(root)
	if err != nil {
		return Models{}, err
	}

	var resources []*core.Resource
	for _, rj := range doc.Resources {
		var kind core.ResourceKind
		switch rj.Kind {
		case "consumable":
			kind = core.Consumable
		case "blocking":
			kind = core.Blocking
		default:
			return Models{}, fmt.Errorf("grade10: resource %q: unknown kind %q", rj.Name, rj.Kind)
		}
		resources = append(resources, &core.Resource{
			Name: rj.Name, Kind: kind, Capacity: rj.Capacity, PerMachine: rj.PerMachine,
		})
	}
	res, err := core.NewResourceModel(resources...)
	if err != nil {
		return Models{}, err
	}

	rules := core.NewRuleSet()
	for _, rj := range doc.Rules {
		if exec.Lookup(rj.PhaseType) == nil {
			return Models{}, fmt.Errorf("grade10: rule references unknown phase type %q", rj.PhaseType)
		}
		if res.Lookup(rj.Resource) == nil {
			return Models{}, fmt.Errorf("grade10: rule references unknown resource %q", rj.Resource)
		}
		var rule core.Rule
		switch rj.Kind {
		case "none":
			rule = core.None()
		case "exact":
			rule = core.Exact(rj.Amount)
		case "variable":
			rule = core.Variable(rj.Amount)
		default:
			return Models{}, fmt.Errorf("grade10: rule %s/%s: unknown kind %q",
				rj.PhaseType, rj.Resource, rj.Kind)
		}
		rules.Set(rj.PhaseType, rj.Resource, rule)
	}
	return Models{Exec: exec, Res: res, Rules: rules}, nil
}

func decodePhaseType(j phaseTypeJSON, parent *core.PhaseType) (*core.PhaseType, error) {
	var t *core.PhaseType
	if parent == nil {
		t = core.NewRootType(j.Name)
	} else {
		t = parent.Child(j.Name, j.Repeated, j.After...)
	}
	t.Repeated = j.Repeated
	t.Sequential = j.Sequential
	t.SyncGroup = j.SyncGroup
	t.ElasticWaits = j.ElasticWaits
	for _, c := range j.Children {
		if _, err := decodePhaseType(c, t); err != nil {
			return nil, err
		}
	}
	return t, nil
}
