// Package grade10 is the top-level facade of the characterization framework:
// it bundles the execution/resource models and attribution rules for the two
// supported engines (the expert input of §III-B, defined once per framework
// and reused across workloads), and orchestrates the full pipeline — ingest
// logs and monitoring, build traces, attribute resources, detect bottlenecks
// and performance issues.
package grade10

import (
	"fmt"

	"grade10/internal/cluster"
	"grade10/internal/core"
)

// ModelParams carries the SUT facts the models need.
type ModelParams struct {
	// Job is the root phase name, matching the engine's program name
	// ("pagerank", "bfs", ...).
	Job string
	// Cores per machine; capacity of the cpu resource.
	Cores float64
	// NetBandwidth per machine in bytes/second.
	NetBandwidth float64
	// DiskBandwidth per machine in bytes/second; 0 omits the disk resource.
	DiskBandwidth float64
	// ThreadsPerWorker is the engine's compute thread count (used by Exact
	// rules for load/write phases).
	ThreadsPerWorker int
}

// Models bundles the three expert inputs for one framework.
type Models struct {
	Exec  *core.ExecutionModel
	Res   *core.ResourceModel
	Rules *core.RuleSet
}

// Blocking resource names shared with the engines.
const (
	ResGC       = "gc"
	ResMsgQueue = "msgqueue"
	ResBarrier  = "barrier"
	ResStarved  = "starved"
)

func consumables(p ModelParams) []*core.Resource {
	out := []*core.Resource{
		{Name: cluster.ResCPU, Kind: core.Consumable, Capacity: p.Cores, PerMachine: true},
		{Name: cluster.ResNetOut, Kind: core.Consumable, Capacity: p.NetBandwidth, PerMachine: true},
		{Name: cluster.ResNetIn, Kind: core.Consumable, Capacity: p.NetBandwidth, PerMachine: true},
	}
	if p.DiskBandwidth > 0 {
		out = append(out, &core.Resource{Name: cluster.ResDisk, Kind: core.Consumable,
			Capacity: p.DiskBandwidth, PerMachine: true})
	}
	return out
}

// diskRules installs the storage rules: only the load and write workers
// touch the disk; every other modeled leaf gets an explicit None so the
// implicit Variable default cannot leak disk consumption onto compute
// phases.
func diskRules(p ModelParams, rules *core.RuleSet, em *core.ExecutionModel) {
	if p.DiskBandwidth <= 0 {
		return
	}
	prefix := "/" + p.Job
	for _, tp := range em.TypePaths() {
		if em.Lookup(tp).IsLeaf() {
			rules.Set(tp, cluster.ResDisk, core.None())
		}
	}
	rules.Set(prefix+"/load/worker", cluster.ResDisk, core.Variable(1)).
		Set(prefix+"/write/worker", cluster.ResDisk, core.Variable(1))
}

// ModelsForEngine builds the built-in tuned models for the named engine
// ("giraph" or "powergraph"). Both the batch CLI and the live serving layer
// resolve run metadata through this one entry point.
func ModelsForEngine(engine string, p ModelParams) (Models, error) {
	switch engine {
	case "giraph":
		return GiraphModel(p)
	case "powergraph":
		return PowerGraphModel(p)
	default:
		return Models{}, fmt.Errorf("grade10: unknown engine %q", engine)
	}
}

// GiraphModel returns the tuned models for the Giraph-like BSP engine: the
// phase hierarchy of its logs, its hardware and software resources (including
// GC and message queues), and the attribution rules the paper describes
// (each active compute thread demands exactly one core).
func GiraphModel(p ModelParams) (Models, error) {
	root := core.NewRootType(p.Job)
	load := root.Child("load", false)
	load.Child("worker", true)
	exec := root.Child("execute", false, "load")
	ss := exec.Child("superstep", true)
	ss.Sequential = true
	worker := ss.Child("worker", true)
	worker.Child("prepare", false)
	compute := worker.Child("compute", false, "prepare")
	compute.Child("thread", true)
	communicate := worker.Child("communicate", false, "prepare")
	communicate.ElasticWaits = true
	barrierType := worker.Child("barrier", false, "compute", "communicate")
	barrierType.SyncGroup = true
	write := root.Child("write", false, "execute")
	write.Child("worker", true)

	em, err := core.NewExecutionModel(root)
	if err != nil {
		return Models{}, err
	}
	rm, err := core.NewResourceModel(append(consumables(p),
		&core.Resource{Name: ResGC, Kind: core.Blocking, PerMachine: true},
		&core.Resource{Name: ResMsgQueue, Kind: core.Blocking, PerMachine: true},
		&core.Resource{Name: ResBarrier, Kind: core.Blocking},
		&core.Resource{Name: ResStarved, Kind: core.Blocking, PerMachine: true},
	)...)
	if err != nil {
		return Models{}, err
	}

	rules := core.NewRuleSet()
	prefix := "/" + p.Job
	thread := prefix + "/execute/superstep/worker/compute/thread"
	comm := prefix + "/execute/superstep/worker/communicate"
	prep := prefix + "/execute/superstep/worker/prepare"
	barrier := prefix + "/execute/superstep/worker/barrier"
	loadW := prefix + "/load/worker"
	writeW := prefix + "/write/worker"
	threads := float64(p.ThreadsPerWorker)

	// The paper's tuned Giraph model: "an active compute thread is expected
	// to always use precisely one CPU core".
	rules.Set(thread, cluster.ResCPU, core.Exact(1)).
		Set(thread, cluster.ResNetOut, core.None()).
		Set(thread, cluster.ResNetIn, core.None()).
		Set(comm, cluster.ResCPU, core.Variable(0.5)).
		Set(comm, cluster.ResNetOut, core.Variable(1)).
		Set(comm, cluster.ResNetIn, core.Variable(1)).
		Set(prep, cluster.ResCPU, core.Variable(1)).
		Set(prep, cluster.ResNetOut, core.None()).
		Set(prep, cluster.ResNetIn, core.None()).
		Set(barrier, cluster.ResCPU, core.None()).
		Set(barrier, cluster.ResNetOut, core.None()).
		Set(barrier, cluster.ResNetIn, core.None()).
		Set(loadW, cluster.ResCPU, core.Exact(threads)).
		Set(loadW, cluster.ResNetOut, core.None()).
		Set(loadW, cluster.ResNetIn, core.None()).
		Set(writeW, cluster.ResCPU, core.Exact(threads)).
		Set(writeW, cluster.ResNetOut, core.None()).
		Set(writeW, cluster.ResNetIn, core.None())
	diskRules(p, rules, em)

	return Models{Exec: em, Res: rm, Rules: rules}, nil
}

// GiraphModelUntuned returns the Giraph models with no attribution rules:
// every phase falls back to the implicit Variable(1) rule, reproducing the
// paper's Figure 3(a) configuration.
func GiraphModelUntuned(p ModelParams) (Models, error) {
	m, err := GiraphModel(p)
	if err != nil {
		return Models{}, err
	}
	m.Rules = core.NewRuleSet()
	return m, nil
}

// PowerGraphModel returns the tuned models for the PowerGraph-like GAS
// engine. The paper notes its model is "comprehensive and tuned", which is
// why its upsampling accuracy is the best in Table II.
func PowerGraphModel(p ModelParams) (Models, error) {
	root := core.NewRootType(p.Job)
	load := root.Child("load", false)
	load.Child("worker", true)
	exec := root.Child("execute", false, "load")
	it := exec.Child("iteration", true)
	it.Sequential = true
	worker := it.Child("worker", true)
	gather := worker.Child("gather", false)
	gather.Child("thread", true)
	exchange := worker.Child("exchange", false, "gather")
	exchange.SyncGroup = true
	apply := worker.Child("apply", false, "exchange")
	apply.Child("thread", true)
	syncX := worker.Child("sync", false, "apply")
	syncX.SyncGroup = true
	scatter := worker.Child("scatter", false, "sync")
	scatter.Child("thread", true)
	barrierType := worker.Child("barrier", false, "scatter")
	barrierType.SyncGroup = true
	write := root.Child("write", false, "execute")
	write.Child("worker", true)

	em, err := core.NewExecutionModel(root)
	if err != nil {
		return Models{}, err
	}
	rm, err := core.NewResourceModel(append(consumables(p),
		&core.Resource{Name: ResBarrier, Kind: core.Blocking},
	)...)
	if err != nil {
		return Models{}, err
	}

	rules := core.NewRuleSet()
	prefix := "/" + p.Job
	threads := float64(p.ThreadsPerWorker)
	for _, minor := range []string{"gather", "apply", "scatter"} {
		tp := fmt.Sprintf("%s/execute/iteration/worker/%s/thread", prefix, minor)
		rules.Set(tp, cluster.ResCPU, core.Exact(1)).
			Set(tp, cluster.ResNetOut, core.None()).
			Set(tp, cluster.ResNetIn, core.None())
	}
	for _, x := range []string{"exchange", "sync"} {
		tp := prefix + "/execute/iteration/worker/" + x
		rules.Set(tp, cluster.ResCPU, core.Variable(0.2)).
			Set(tp, cluster.ResNetOut, core.Variable(1)).
			Set(tp, cluster.ResNetIn, core.Variable(1))
	}
	barrier := prefix + "/execute/iteration/worker/barrier"
	rules.Set(barrier, cluster.ResCPU, core.None()).
		Set(barrier, cluster.ResNetOut, core.None()).
		Set(barrier, cluster.ResNetIn, core.None())
	for _, w := range []string{"/load/worker", "/write/worker"} {
		tp := prefix + w
		rules.Set(tp, cluster.ResCPU, core.Exact(threads)).
			Set(tp, cluster.ResNetOut, core.None()).
			Set(tp, cluster.ResNetIn, core.None())
	}
	diskRules(p, rules, em)

	return Models{Exec: em, Res: rm, Rules: rules}, nil
}
