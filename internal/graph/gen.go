package graph

import (
	"math"
	"math/rand"
)

// The generators below stand in for the Graphalytics datasets the paper uses
// (DESIGN.md §2). Both are deterministic for a given seed.

// RMAT generates a Graph500-style R-MAT graph with 2^scale vertices and
// approximately edgeFactor·2^scale directed edges, using the standard
// (a, b, c, d) = (0.57, 0.19, 0.19, 0.05) quadrant probabilities. Duplicate
// edges are collapsed, so the exact edge count is slightly lower. The skewed
// degree distribution drives the workload imbalance the paper studies.
func RMAT(scale int, edgeFactor int, seed int64) *Graph {
	return RMATParams(scale, edgeFactor, 0.57, 0.19, 0.19, seed)
}

// RMATParams is RMAT with explicit quadrant probabilities a, b, c
// (d = 1-a-b-c).
func RMATParams(scale, edgeFactor int, a, b, c float64, seed int64) *Graph {
	if scale < 1 || scale > 30 {
		panic("graph: RMAT scale out of range")
	}
	n := 1 << scale
	m := n * edgeFactor
	rng := rand.New(rand.NewSource(seed))
	bld := NewBuilder(n)
	for i := 0; i < m; i++ {
		src, dst := 0, 0
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left: neither bit set
			case r < a+b:
				dst |= 1 << bit
			case r < a+b+c:
				src |= 1 << bit
			default:
				src |= 1 << bit
				dst |= 1 << bit
			}
		}
		bld.AddEdge(Vertex(src), Vertex(dst))
	}
	return bld.Build(true)
}

// CommunityParams configures the Datagen-like community graph generator.
type CommunityParams struct {
	// Vertices is the total vertex count.
	Vertices int
	// Communities is the number of communities; community sizes follow a
	// Zipf-like distribution so a few communities dominate, as in social
	// networks.
	Communities int
	// IntraDegree is the average number of intra-community out-edges per
	// vertex, attached preferentially so intra-community degrees are skewed.
	IntraDegree int
	// InterFraction is the fraction of additional edges that cross
	// communities (uniform endpoints).
	InterFraction float64
	// Seed makes the generator deterministic.
	Seed int64
}

// Community generates an LDBC-Datagen-like graph: Zipf community sizes,
// preferential attachment inside communities, and a controlled fraction of
// cross-community edges. CDLP on such graphs shows the strong per-community
// work imbalance the paper's Figure 5 reports.
func Community(p CommunityParams) *Graph {
	if p.Vertices <= 0 || p.Communities <= 0 || p.Communities > p.Vertices {
		panic("graph: invalid community parameters")
	}
	if p.IntraDegree < 1 {
		p.IntraDegree = 1
	}
	rng := rand.New(rand.NewSource(p.Seed))

	// Zipf-like community sizes: size_i ∝ 1/(i+1), scaled to sum to Vertices.
	weights := make([]float64, p.Communities)
	totalW := 0.0
	for i := range weights {
		weights[i] = 1.0 / float64(i+1)
		totalW += weights[i]
	}
	sizes := make([]int, p.Communities)
	assigned := 0
	for i := range sizes {
		sizes[i] = int(math.Floor(weights[i] / totalW * float64(p.Vertices)))
		if sizes[i] < 1 {
			sizes[i] = 1
		}
		assigned += sizes[i]
	}
	// Distribute the rounding remainder (or trim overshoot) on the largest
	// community.
	sizes[0] += p.Vertices - assigned
	if sizes[0] < 1 {
		panic("graph: community sizing failed")
	}

	// Vertices are numbered community by community; interleave communities
	// via a deterministic shuffle at the end so partitioners do not get
	// trivially aligned communities.
	perm := rng.Perm(p.Vertices)
	label := make([]Vertex, p.Vertices) // position → final vertex id
	for i, v := range perm {
		label[i] = Vertex(v)
	}

	bld := NewBuilder(p.Vertices)
	base := 0
	for c := 0; c < p.Communities; c++ {
		size := sizes[c]
		// Preferential attachment within the community: vertex k connects to
		// IntraDegree earlier vertices, chosen proportionally to their
		// current degree (approximated by sampling positions of prior edge
		// endpoints, the standard Barabási–Albert trick).
		var endpoints []int // local indices, one entry per prior edge endpoint
		for k := 1; k < size; k++ {
			deg := p.IntraDegree
			if deg > k {
				deg = k
			}
			for d := 0; d < deg; d++ {
				var target int
				if len(endpoints) > 0 && rng.Float64() < 0.75 {
					target = endpoints[rng.Intn(len(endpoints))]
				} else {
					target = rng.Intn(k)
				}
				src := label[base+k]
				dst := label[base+target]
				bld.AddEdge(src, dst)
				bld.AddEdge(dst, src) // communities are effectively undirected
				endpoints = append(endpoints, target, k)
			}
		}
		base += size
	}

	// Cross-community edges.
	inter := int(p.InterFraction * float64(bld.NumEdges()))
	for i := 0; i < inter; i++ {
		src := Vertex(rng.Intn(p.Vertices))
		dst := Vertex(rng.Intn(p.Vertices))
		if src != dst {
			bld.AddEdge(src, dst)
		}
	}
	return bld.Build(true)
}

// Ring generates a directed cycle over n vertices: the pathological
// high-diameter input used in tests.
func Ring(n int) *Graph {
	bld := NewBuilder(n)
	for v := 0; v < n; v++ {
		bld.AddEdge(Vertex(v), Vertex((v+1)%n))
	}
	return bld.Build(false)
}

// ErdosRenyi generates a uniform random directed graph with n vertices and
// approximately m edges.
func ErdosRenyi(n, m int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	bld := NewBuilder(n)
	for i := 0; i < m; i++ {
		src := Vertex(rng.Intn(n))
		dst := Vertex(rng.Intn(n))
		bld.AddEdge(src, dst)
	}
	return bld.Build(true)
}
