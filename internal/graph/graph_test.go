package graph

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func diamond() *Graph {
	// 0→1, 0→2, 1→3, 2→3, 3→0
	return FromEdges(4, []Edge{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 0}})
}

func TestCSRBasics(t *testing.T) {
	g := diamond()
	if g.NumVertices() != 4 || g.NumEdges() != 5 {
		t.Fatalf("size %d/%d", g.NumVertices(), g.NumEdges())
	}
	if got := g.OutNeighbors(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("out(0) = %v", got)
	}
	if got := g.InNeighbors(3); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("in(3) = %v", got)
	}
	if g.OutDegree(3) != 1 || g.InDegree(0) != 1 || g.Degree(0) != 3 {
		t.Fatal("degrees wrong")
	}
}

func TestEdgesIterationOrderAndIndex(t *testing.T) {
	g := diamond()
	var idx []int64
	var edges []Edge
	g.Edges(func(i int64, e Edge) {
		idx = append(idx, i)
		edges = append(edges, e)
	})
	if len(edges) != 5 {
		t.Fatalf("%d edges", len(edges))
	}
	for i := range idx {
		if idx[i] != int64(i) {
			t.Fatalf("index sequence %v", idx)
		}
		if src := g.EdgeSource(idx[i]); src != edges[i].Src {
			t.Fatalf("EdgeSource(%d) = %d, want %d", idx[i], src, edges[i].Src)
		}
		if dst := g.EdgeDst(idx[i]); dst != edges[i].Dst {
			t.Fatalf("EdgeDst(%d) = %d, want %d", idx[i], dst, edges[i].Dst)
		}
	}
	if !sort.SliceIsSorted(edges, func(i, j int) bool {
		if edges[i].Src != edges[j].Src {
			return edges[i].Src < edges[j].Src
		}
		return edges[i].Dst < edges[j].Dst
	}) {
		t.Fatalf("edges not in CSR order: %v", edges)
	}
}

func TestBuilderDedup(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	if g := b.Build(true); g.NumEdges() != 2 {
		t.Fatalf("dedup kept %d edges", g.NumEdges())
	}
}

func TestBuilderOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder(2).AddEdge(0, 2)
}

// Property: in-degree sum equals out-degree sum equals edge count, and
// adjacency is consistent between directions.
func TestDegreeConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		m := rng.Intn(200)
		b := NewBuilder(n)
		for i := 0; i < m; i++ {
			b.AddEdge(Vertex(rng.Intn(n)), Vertex(rng.Intn(n)))
		}
		g := b.Build(false)
		sumOut, sumIn := 0, 0
		for v := 0; v < n; v++ {
			sumOut += g.OutDegree(Vertex(v))
			sumIn += g.InDegree(Vertex(v))
		}
		if int64(sumOut) != g.NumEdges() || int64(sumIn) != g.NumEdges() {
			return false
		}
		// Every out-edge appears as an in-edge.
		count := map[Edge]int{}
		g.Edges(func(_ int64, e Edge) { count[e]++ })
		for v := 0; v < n; v++ {
			for _, u := range g.InNeighbors(Vertex(v)) {
				count[Edge{u, Vertex(v)}]--
			}
		}
		for _, c := range count {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRMATDeterministicAndSized(t *testing.T) {
	g1 := RMAT(8, 8, 42)
	g2 := RMAT(8, 8, 42)
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatal("RMAT not deterministic")
	}
	var e1, e2 []Edge
	g1.Edges(func(_ int64, e Edge) { e1 = append(e1, e) })
	g2.Edges(func(_ int64, e Edge) { e2 = append(e2, e) })
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatal("RMAT edges differ across runs")
		}
	}
	if g1.NumVertices() != 256 {
		t.Fatalf("vertices %d", g1.NumVertices())
	}
	// Dedup reduces the count but most edges must survive.
	if g1.NumEdges() < 256*4 {
		t.Fatalf("too few edges: %d", g1.NumEdges())
	}
	if g3 := RMAT(8, 8, 43); func() bool {
		if g3.NumEdges() != g1.NumEdges() {
			return false
		}
		same := true
		var e3 []Edge
		g3.Edges(func(_ int64, e Edge) { e3 = append(e3, e) })
		for i := range e1 {
			if e1[i] != e3[i] {
				same = false
			}
		}
		return same
	}() {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestRMATSkew(t *testing.T) {
	g := RMAT(10, 16, 7)
	// R-MAT graphs are heavy-tailed: the max degree should far exceed the
	// average degree.
	avg := float64(g.NumEdges()) / float64(g.NumVertices())
	if maxD := g.MaxOutDegree(); float64(maxD) < 4*avg {
		t.Fatalf("max degree %d not skewed vs avg %.1f", maxD, avg)
	}
}

func TestCommunityGenerator(t *testing.T) {
	g := Community(CommunityParams{
		Vertices: 1000, Communities: 20, IntraDegree: 4,
		InterFraction: 0.05, Seed: 11,
	})
	if g.NumVertices() != 1000 {
		t.Fatalf("vertices %d", g.NumVertices())
	}
	if g.NumEdges() < 3000 {
		t.Fatalf("edges %d too few", g.NumEdges())
	}
	// Determinism.
	g2 := Community(CommunityParams{
		Vertices: 1000, Communities: 20, IntraDegree: 4,
		InterFraction: 0.05, Seed: 11,
	})
	if g.NumEdges() != g2.NumEdges() {
		t.Fatal("community generator not deterministic")
	}
}

func TestRingAndErdosRenyi(t *testing.T) {
	r := Ring(10)
	if r.NumEdges() != 10 {
		t.Fatalf("ring edges %d", r.NumEdges())
	}
	for v := 0; v < 10; v++ {
		if out := r.OutNeighbors(Vertex(v)); len(out) != 1 || out[0] != Vertex((v+1)%10) {
			t.Fatalf("ring out(%d) = %v", v, out)
		}
	}
	er := ErdosRenyi(100, 500, 3)
	if er.NumVertices() != 100 || er.NumEdges() == 0 {
		t.Fatal("ER generator broken")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := RMAT(6, 4, 5)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVertices() != g.NumVertices() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip size %d/%d vs %d/%d",
			back.NumVertices(), back.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	var a, b []Edge
	g.Edges(func(_ int64, e Edge) { a = append(a, e) })
	back.Edges(func(_ int64, e Edge) { b = append(b, e) })
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("edges differ after round trip")
		}
	}
}

func TestReadEdgeListNoHeader(t *testing.T) {
	g, err := ReadEdgeList(bytes.NewBufferString("0 1\n1 2\n2 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("size %d/%d", g.NumVertices(), g.NumEdges())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	if _, err := ReadEdgeList(bytes.NewBufferString("0\n")); err == nil {
		t.Fatal("missing dst accepted")
	}
	if _, err := ReadEdgeList(bytes.NewBufferString("a b\n")); err == nil {
		t.Fatal("non-numeric accepted")
	}
	if _, err := ReadEdgeList(bytes.NewBufferString("# 2 1\n0 5\n")); err == nil {
		t.Fatal("out-of-range vertex accepted")
	}
	if _, err := ReadEdgeList(bytes.NewBufferString("")); err == nil {
		t.Fatal("empty input accepted")
	}
}
