package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes the graph as "src dst" lines, the plain-text format
// used by Graphalytics datasets. The first line is a "# vertices edges"
// header so readers can pre-size.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# %d %d\n", g.NumVertices(), g.NumEdges()); err != nil {
		return err
	}
	var writeErr error
	g.Edges(func(_ int64, e Edge) {
		if writeErr != nil {
			return
		}
		_, writeErr = fmt.Fprintf(bw, "%d %d\n", e.Src, e.Dst)
	})
	if writeErr != nil {
		return writeErr
	}
	return bw.Flush()
}

// ReadEdgeList parses a graph written by WriteEdgeList. Lines starting with
// '#' other than the header are ignored; the header is optional, in which
// case the vertex count is one more than the largest identifier seen.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []Edge
	n := -1
	maxID := Vertex(0)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if n < 0 {
				fields := strings.Fields(strings.TrimPrefix(line, "#"))
				if len(fields) >= 1 {
					if v, err := strconv.Atoi(fields[0]); err == nil && v > 0 {
						n = v
					}
				}
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: expected 'src dst', got %q", lineNo, line)
		}
		src, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source: %v", lineNo, err)
		}
		dst, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad destination: %v", lineNo, err)
		}
		edges = append(edges, Edge{Vertex(src), Vertex(dst)})
		if Vertex(src) > maxID {
			maxID = Vertex(src)
		}
		if Vertex(dst) > maxID {
			maxID = Vertex(dst)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if n < 0 {
		if len(edges) == 0 {
			return nil, fmt.Errorf("graph: empty edge list without header")
		}
		n = int(maxID) + 1
	}
	if int(maxID) >= n {
		return nil, fmt.Errorf("graph: vertex %d out of declared range %d", maxID, n)
	}
	return FromEdges(n, edges), nil
}
