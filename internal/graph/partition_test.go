package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHashPartitionCoversAndBalances(t *testing.T) {
	g := RMAT(10, 8, 1)
	p := HashPartition(g, 8)
	sizes := p.PartSizes()
	if len(sizes) != 8 {
		t.Fatalf("%d parts", len(sizes))
	}
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != g.NumVertices() {
		t.Fatalf("sizes sum %d, want %d", total, g.NumVertices())
	}
	// Hash partitioning should be within 2x of perfectly balanced.
	per := g.NumVertices() / 8
	for i, s := range sizes {
		if s < per/2 || s > per*2 {
			t.Fatalf("part %d size %d far from balanced %d", i, s, per)
		}
	}
}

func TestPartVerticesConsistent(t *testing.T) {
	g := Ring(20)
	p := HashPartition(g, 4)
	for part, vs := range p.PartVertices() {
		for _, v := range vs {
			if p.Owner(v) != part {
				t.Fatalf("vertex %d listed under part %d but owned by %d", v, part, p.Owner(v))
			}
		}
	}
}

func TestRangePartition(t *testing.T) {
	g := Ring(10)
	p := RangePartition(g, 3)
	// per = ceil(10/3) = 4 → parts of 4,4,2.
	want := []int{4, 4, 2}
	for i, s := range p.PartSizes() {
		if s != want[i] {
			t.Fatalf("sizes %v", p.PartSizes())
		}
	}
	if p.Owner(0) != 0 || p.Owner(4) != 1 || p.Owner(9) != 2 {
		t.Fatal("range owners wrong")
	}
}

func TestGreedyVertexCutInvariants(t *testing.T) {
	g := RMAT(9, 8, 2)
	vc := GreedyVertexCut(g, 8)

	// Every edge is on exactly one part, and both endpoints have a replica
	// there.
	edgeTotal := int64(0)
	for p := 0; p < 8; p++ {
		edgeTotal += int64(len(vc.PartEdges(p)))
		for _, i := range vc.PartEdges(p) {
			if vc.EdgePart(i) != p {
				t.Fatalf("edge %d listed on part %d, assigned to %d", i, p, vc.EdgePart(i))
			}
			src, dst := g.EdgeSource(i), g.EdgeDst(i)
			if !vc.HasReplica(src, p) || !vc.HasReplica(dst, p) {
				t.Fatalf("edge %d endpoints lack replica on part %d", i, p)
			}
		}
	}
	if edgeTotal != g.NumEdges() {
		t.Fatalf("edge coverage %d, want %d", edgeTotal, g.NumEdges())
	}

	// Masters are replicas; every vertex has ≥1 replica.
	for v := 0; v < g.NumVertices(); v++ {
		if vc.Replicas(Vertex(v)) < 1 {
			t.Fatalf("vertex %d has no replicas", v)
		}
		if !vc.HasReplica(Vertex(v), vc.Master(Vertex(v))) {
			t.Fatalf("vertex %d master %d is not a replica", v, vc.Master(Vertex(v)))
		}
	}

	// Replication factor must be sane: ≥1 and well below the part count.
	rf := vc.ReplicationFactor()
	if rf < 1 || rf > 8 {
		t.Fatalf("replication factor %v", rf)
	}
}

func TestGreedyVertexCutBeatsRandomOnReplication(t *testing.T) {
	g := RMAT(9, 8, 2)
	greedy := GreedyVertexCut(g, 8)

	// Random edge placement baseline.
	rng := rand.New(rand.NewSource(99))
	replica := make([]uint64, g.NumVertices())
	g.Edges(func(i int64, e Edge) {
		p := uint(rng.Intn(8))
		replica[e.Src] |= 1 << p
		replica[e.Dst] |= 1 << p
	})
	total := 0
	for _, m := range replica {
		for ; m != 0; m &= m - 1 {
			total++
		}
	}
	randomRF := float64(total) / float64(g.NumVertices())
	if greedy.ReplicationFactor() >= randomRF {
		t.Fatalf("greedy RF %.3f not better than random RF %.3f",
			greedy.ReplicationFactor(), randomRF)
	}
}

func TestReplicaPartsEnumeration(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 1}, {1, 2}, {2, 0}})
	vc := GreedyVertexCut(g, 2)
	for v := 0; v < 3; v++ {
		count := 0
		vc.ReplicaParts(Vertex(v), func(p int) {
			if !vc.HasReplica(Vertex(v), p) {
				t.Fatalf("enumerated non-replica part %d for %d", p, v)
			}
			count++
		})
		if count != vc.Replicas(Vertex(v)) {
			t.Fatalf("vertex %d: enumerated %d, Replicas()=%d", v, count, vc.Replicas(Vertex(v)))
		}
	}
}

// Property: vertex-cut invariants hold for random graphs and part counts.
func TestVertexCutProperty(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw%8) + 1
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(50)
		b := NewBuilder(n)
		m := rng.Intn(300)
		for i := 0; i < m; i++ {
			b.AddEdge(Vertex(rng.Intn(n)), Vertex(rng.Intn(n)))
		}
		g := b.Build(false)
		vc := GreedyVertexCut(g, k)
		covered := int64(0)
		for p := 0; p < k; p++ {
			covered += int64(len(vc.PartEdges(p)))
		}
		if covered != g.NumEdges() {
			return false
		}
		for v := 0; v < n; v++ {
			if vc.Replicas(Vertex(v)) < 1 || !vc.HasReplica(Vertex(v), vc.Master(Vertex(v))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionPanics(t *testing.T) {
	g := Ring(4)
	for _, fn := range []func(){
		func() { HashPartition(g, 0) },
		func() { RangePartition(g, 0) },
		func() { GreedyVertexCut(g, 0) },
		func() { GreedyVertexCut(g, 65) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestGreedyVertexCutEmptyGraph(t *testing.T) {
	// No edges at all: every vertex still gets a hash-spread master.
	b := NewBuilder(8)
	g := b.Build(false)
	vc := GreedyVertexCut(g, 4)
	if vc.ReplicationFactor() != 1 {
		t.Fatalf("replication factor %v", vc.ReplicationFactor())
	}
	for v := 0; v < 8; v++ {
		if vc.Replicas(Vertex(v)) != 1 {
			t.Fatalf("vertex %d replicas %d", v, vc.Replicas(Vertex(v)))
		}
	}
}
