package graph

import (
	"math/bits"
	"sort"
)

// Partition is an edge-cut partitioning: every vertex is owned by exactly one
// part and edges may cross parts (each crossing edge becomes a network
// message in the BSP engine).
type Partition struct {
	NumParts int
	owner    []uint16
}

// Owner returns the part owning vertex v.
func (p *Partition) Owner(v Vertex) int { return int(p.owner[v]) }

// PartVertices returns the vertices owned by each part.
func (p *Partition) PartVertices() [][]Vertex {
	parts := make([][]Vertex, p.NumParts)
	for v, o := range p.owner {
		parts[o] = append(parts[o], Vertex(v))
	}
	return parts
}

// PartSizes returns the number of vertices owned by each part.
func (p *Partition) PartSizes() []int {
	sizes := make([]int, p.NumParts)
	for _, o := range p.owner {
		sizes[o]++
	}
	return sizes
}

// HashPartition assigns vertices to k parts by multiplicative hashing of the
// vertex identifier — Giraph's default strategy. The hash decorrelates
// ownership from generator vertex numbering.
func HashPartition(g *Graph, k int) *Partition {
	if k <= 0 || k > 1<<16 {
		panic("graph: part count out of range")
	}
	p := &Partition{NumParts: k, owner: make([]uint16, g.NumVertices())}
	for v := range p.owner {
		h := uint64(v) * 0x9E3779B97F4A7C15
		h ^= h >> 32
		p.owner[v] = uint16(h % uint64(k))
	}
	return p
}

// RangePartition assigns contiguous vertex ranges to parts. It preserves any
// locality present in vertex numbering, which makes imbalance worse on
// community graphs — useful for imbalance experiments.
func RangePartition(g *Graph, k int) *Partition {
	if k <= 0 || k > 1<<16 {
		panic("graph: part count out of range")
	}
	n := g.NumVertices()
	p := &Partition{NumParts: k, owner: make([]uint16, n)}
	per := (n + k - 1) / k
	for v := 0; v < n; v++ {
		p.owner[v] = uint16(v / per)
	}
	return p
}

// VertexCut is a PowerGraph-style vertex-cut partitioning: every edge lives
// on exactly one part; a vertex is replicated on every part holding one of
// its edges, with one replica designated master. Mirror↔master
// synchronization traffic is proportional to the replication factor.
//
// Part count is limited to 64 so replica sets fit in one machine word.
type VertexCut struct {
	NumParts int
	// edgePart[i] is the part owning the edge with CSR index i.
	edgePart []uint8
	// replicaMask[v] has bit p set iff vertex v has a replica on part p.
	replicaMask []uint64
	// master[v] is the part holding v's master replica.
	master []uint8
	// partEdges[p] lists the CSR edge indices owned by part p.
	partEdges [][]int64
}

// GreedyVertexCut computes a vertex-cut over k ≤ 64 parts using PowerGraph's
// greedy heuristic: place each edge on a part already holding both endpoints
// if possible, else one holding either endpoint (preferring the less loaded),
// else the least-loaded part. Edges are visited in a deterministic shuffled
// order — sequential CSR order would chain every edge of a connected graph
// onto one part — and a balance guard overrides the candidate when it is
// already far more loaded than the lightest part, mirroring the ingress
// balance constraint of the real system.
func GreedyVertexCut(g *Graph, k int) *VertexCut {
	if k <= 0 || k > 64 {
		panic("graph: vertex-cut part count must be 1..64")
	}
	n := g.NumVertices()
	vc := &VertexCut{
		NumParts:    k,
		edgePart:    make([]uint8, g.NumEdges()),
		replicaMask: make([]uint64, n),
		master:      make([]uint8, n),
		partEdges:   make([][]int64, k),
	}
	load := make([]int64, k)

	leastLoaded := func(mask uint64) int {
		best, bestLoad := -1, int64(1<<62)
		for p := 0; p < k; p++ {
			if mask&(1<<uint(p)) == 0 {
				continue
			}
			if load[p] < bestLoad {
				best, bestLoad = p, load[p]
			}
		}
		return best
	}
	allMask := uint64(1)<<uint(k) - 1
	perEdgeTarget := float64(g.NumEdges())/float64(k) + 1

	m := g.NumEdges()
	var stride int64
	if m > 0 {
		stride = permutationStride(m)
	}
	for j := int64(0); j < m; j++ {
		i := (j*stride + m/2) % m
		e := Edge{Src: g.EdgeSource(i), Dst: g.EdgeDst(i)}
		ms, md := vc.replicaMask[e.Src], vc.replicaMask[e.Dst]
		var part int
		switch {
		case ms&md != 0:
			part = leastLoaded(ms & md)
		case ms|md != 0:
			part = leastLoaded(ms | md)
		default:
			part = leastLoaded(allMask)
		}
		// Balance guard: never let the greedy choice run 25% past the even
		// share while another part is lighter.
		if float64(load[part]) > 1.25*perEdgeTarget {
			if alt := leastLoaded(allMask); load[alt] < load[part] {
				part = alt
			}
		}
		vc.edgePart[i] = uint8(part)
		vc.replicaMask[e.Src] |= 1 << uint(part)
		vc.replicaMask[e.Dst] |= 1 << uint(part)
		load[part]++
		vc.partEdges[part] = append(vc.partEdges[part], i)
	}
	for p := range vc.partEdges {
		sortInt64s(vc.partEdges[p])
	}

	// Master = lowest-numbered replica part; isolated vertices get a master
	// by hash so they are spread evenly.
	for v := 0; v < n; v++ {
		m := vc.replicaMask[v]
		if m == 0 {
			h := uint64(v) * 0x9E3779B97F4A7C15
			p := uint8(h % uint64(k))
			vc.master[v] = p
			vc.replicaMask[v] = 1 << uint(p)
			continue
		}
		vc.master[v] = uint8(bits.TrailingZeros64(m))
	}
	return vc
}

// permutationStride returns a stride coprime to m, defining the affine
// permutation j → (j·stride + m/2) mod m used to visit edges in a
// deterministic shuffled order.
func permutationStride(m int64) int64 {
	stride := int64(2654435761) % m
	if stride <= 0 {
		stride = 1
	}
	for gcd64(stride, m) != 1 {
		stride++
		if stride >= m {
			stride = 1
		}
	}
	return stride
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func sortInt64s(a []int64) {
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
}

// EdgePart returns the part owning the edge with CSR index i.
func (vc *VertexCut) EdgePart(i int64) int { return int(vc.edgePart[i]) }

// Master returns the part holding v's master replica.
func (vc *VertexCut) Master(v Vertex) int { return int(vc.master[v]) }

// Replicas returns the number of parts holding a replica of v (at least 1).
func (vc *VertexCut) Replicas(v Vertex) int {
	return bits.OnesCount64(vc.replicaMask[v])
}

// HasReplica reports whether part p holds a replica of v.
func (vc *VertexCut) HasReplica(v Vertex, p int) bool {
	return vc.replicaMask[v]&(1<<uint(p)) != 0
}

// ReplicaParts calls fn for each part holding a replica of v.
func (vc *VertexCut) ReplicaParts(v Vertex, fn func(p int)) {
	m := vc.replicaMask[v]
	for m != 0 {
		p := bits.TrailingZeros64(m)
		fn(p)
		m &= m - 1
	}
}

// PartEdges returns the CSR edge indices owned by part p. The slice aliases
// internal storage and must not be modified.
func (vc *VertexCut) PartEdges(p int) []int64 { return vc.partEdges[p] }

// ReplicationFactor returns the mean number of replicas per vertex, the
// standard quality metric for vertex-cuts.
func (vc *VertexCut) ReplicationFactor() float64 {
	total := 0
	for v := range vc.replicaMask {
		total += bits.OnesCount64(vc.replicaMask[v])
	}
	return float64(total) / float64(len(vc.replicaMask))
}
