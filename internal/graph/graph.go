// Package graph provides compressed sparse row (CSR) graphs, deterministic
// synthetic generators standing in for the Graphalytics datasets used by the
// paper, and the partitioners the two simulated engines rely on: hash-based
// edge-cut (Giraph-like BSP) and greedy vertex-cut (PowerGraph-like GAS).
package graph

import (
	"fmt"
	"sort"
)

// Vertex is a vertex identifier.
type Vertex = uint32

// Edge is a directed edge.
type Edge struct {
	Src, Dst Vertex
}

// E constructs an Edge; a shorthand for building edge lists in callers and
// tests.
func E(src, dst Vertex) Edge { return Edge{Src: src, Dst: dst} }

// Graph is an immutable directed graph in CSR form, with both out- and
// in-adjacency for algorithms that traverse in either direction.
type Graph struct {
	n      int
	outOff []int64
	outAdj []Vertex
	inOff  []int64
	inAdj  []Vertex
}

// NumVertices returns the number of vertices. Vertex identifiers are
// 0..NumVertices-1.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int64 { return int64(len(g.outAdj)) }

// OutNeighbors returns the out-neighbors of v. The returned slice aliases
// internal storage and must not be modified.
func (g *Graph) OutNeighbors(v Vertex) []Vertex {
	return g.outAdj[g.outOff[v]:g.outOff[v+1]]
}

// InNeighbors returns the in-neighbors of v. The returned slice aliases
// internal storage and must not be modified.
func (g *Graph) InNeighbors(v Vertex) []Vertex {
	return g.inAdj[g.inOff[v]:g.inOff[v+1]]
}

// OutDegree returns the out-degree of v.
func (g *Graph) OutDegree(v Vertex) int { return int(g.outOff[v+1] - g.outOff[v]) }

// InDegree returns the in-degree of v.
func (g *Graph) InDegree(v Vertex) int { return int(g.inOff[v+1] - g.inOff[v]) }

// Degree returns the total degree (in + out) of v.
func (g *Graph) Degree(v Vertex) int { return g.OutDegree(v) + g.InDegree(v) }

// Edges calls fn for every directed edge in CSR order (sorted by source,
// then destination). The edge index passed to fn is stable and matches the
// ordering used by vertex-cut partition assignments.
func (g *Graph) Edges(fn func(i int64, e Edge)) {
	var i int64
	for v := 0; v < g.n; v++ {
		for _, w := range g.OutNeighbors(Vertex(v)) {
			fn(i, Edge{Vertex(v), w})
			i++
		}
	}
}

// EdgeSource returns the source vertex of the edge with CSR index i.
func (g *Graph) EdgeSource(i int64) Vertex {
	// Binary search over the offset array.
	v := sort.Search(g.n, func(v int) bool { return g.outOff[v+1] > i })
	return Vertex(v)
}

// EdgeDst returns the destination vertex of the edge with CSR index i.
func (g *Graph) EdgeDst(i int64) Vertex { return g.outAdj[i] }

// MaxOutDegree returns the largest out-degree in the graph.
func (g *Graph) MaxOutDegree() int {
	maxD := 0
	for v := 0; v < g.n; v++ {
		if d := g.OutDegree(Vertex(v)); d > maxD {
			maxD = d
		}
	}
	return maxD
}

// Builder accumulates edges and produces a Graph. Duplicate edges are kept
// unless deduplication is requested; self-loops are kept (graph algorithms in
// this repository tolerate them).
type Builder struct {
	n     int
	edges []Edge
}

// NewBuilder creates a builder for a graph with n vertices.
func NewBuilder(n int) *Builder {
	if n <= 0 {
		panic("graph: builder needs at least one vertex")
	}
	return &Builder{n: n}
}

// AddEdge records a directed edge. It panics on out-of-range endpoints so
// generator bugs surface at insertion, not at traversal.
func (b *Builder) AddEdge(src, dst Vertex) {
	if int(src) >= b.n || int(dst) >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range for %d vertices", src, dst, b.n))
	}
	b.edges = append(b.edges, Edge{src, dst})
}

// NumEdges returns the number of edges added so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// Build produces the CSR graph. If dedup is true, duplicate edges are
// collapsed.
func (b *Builder) Build(dedup bool) *Graph {
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i].Src != b.edges[j].Src {
			return b.edges[i].Src < b.edges[j].Src
		}
		return b.edges[i].Dst < b.edges[j].Dst
	})
	edges := b.edges
	if dedup && len(edges) > 0 {
		out := edges[:1]
		for _, e := range edges[1:] {
			if e != out[len(out)-1] {
				out = append(out, e)
			}
		}
		edges = out
	}

	g := &Graph{
		n:      b.n,
		outOff: make([]int64, b.n+1),
		outAdj: make([]Vertex, len(edges)),
		inOff:  make([]int64, b.n+1),
		inAdj:  make([]Vertex, len(edges)),
	}
	for _, e := range edges {
		g.outOff[e.Src+1]++
		g.inOff[e.Dst+1]++
	}
	for v := 0; v < b.n; v++ {
		g.outOff[v+1] += g.outOff[v]
		g.inOff[v+1] += g.inOff[v]
	}
	for i, e := range edges {
		g.outAdj[i] = e.Dst
	}
	// Fill in-adjacency with a counting pass; sources arrive in sorted order,
	// so each in-neighbor list ends up sorted as well.
	next := make([]int64, b.n)
	copy(next, g.inOff[:b.n])
	for _, e := range edges {
		g.inAdj[next[e.Dst]] = e.Src
		next[e.Dst]++
	}
	return g
}

// FromEdges builds a graph directly from an edge slice; a convenience for
// tests.
func FromEdges(n int, edges []Edge) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e.Src, e.Dst)
	}
	return b.Build(false)
}
