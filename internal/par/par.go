// Package par is the shared worker-pool primitive behind Grade10's parallel
// analysis pipeline. Attribution fans out per resource instance, issue
// detection runs one trace replay per candidate issue, and the engine
// simulators precompute per-thread cost models concurrently — all through
// Do, an index-parallel loop with a work-stealing counter.
//
// Determinism contract: Do guarantees only that every fn(i) completes before
// Do returns; callers keep results deterministic by writing fn's output to
// index i of a pre-sized slice and merging in index order afterwards. With a
// resolved worker count of 1 the loop runs inline on the caller's goroutine,
// so serial mode is trivially identical to the pre-parallel code path.
//
// The package-level default parallelism is what the `-parallelism` flag of
// cmd/grade10, cmd/runsim, and cmd/serve plumbs through; layers that expose
// their own knob (grade10.Input, stream.Config, issues.Config, the simulator
// Configs) treat 0 as "use the default".
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultN is the process-wide default parallelism; 0 means GOMAXPROCS.
var defaultN atomic.Int64

// SetDefault sets the process-wide default worker count used when a layer's
// own parallelism knob is 0. n <= 0 resets to GOMAXPROCS.
func SetDefault(n int) {
	if n < 0 {
		n = 0
	}
	defaultN.Store(int64(n))
}

// Default returns the process-wide default worker count.
func Default() int {
	if n := defaultN.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// Workers resolves a requested parallelism against the job count: n <= 0
// takes Default(), and the result never exceeds jobs (no idle goroutines).
func Workers(n, jobs int) int {
	if n <= 0 {
		n = Default()
	}
	if n > jobs {
		n = jobs
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Do runs fn(i) for every i in [0, jobs) on up to `workers` goroutines
// (resolved via Workers) and returns when all calls have completed. Indices
// are handed out through an atomic counter, so the assignment of index to
// goroutine is nondeterministic — fn must only write to per-index state. A
// panic in any fn is re-raised on the caller's goroutine after the remaining
// workers drain.
func Do(jobs, workers int, fn func(i int)) {
	DoWithWorker(jobs, workers, func(_, i int) { fn(i) })
}

// DoWithWorker is Do with the executing worker's lane id passed to fn
// (0 <= worker < resolved workers). Lane-to-index assignment is
// nondeterministic; the id exists for observability — span tracing renders
// one timeline track per lane — never for result placement.
func DoWithWorker(jobs, workers int, fn func(worker, i int)) {
	if jobs <= 0 {
		return
	}
	workers = Workers(workers, jobs)
	if workers == 1 {
		for i := 0; i < jobs; i++ {
			fn(0, i)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Value
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicked.CompareAndSwap(nil, r)
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= jobs || panicked.Load() != nil {
					return
				}
				fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
	if r := panicked.Load(); r != nil {
		panic(r)
	}
}
