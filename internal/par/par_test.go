package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestDoCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const jobs = 1000
		hits := make([]int32, jobs)
		Do(jobs, workers, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestDoZeroJobs(t *testing.T) {
	Do(0, 4, func(int) { t.Fatal("fn called with zero jobs") })
	Do(-3, 4, func(int) { t.Fatal("fn called with negative jobs") })
}

func TestDoSerialIsInline(t *testing.T) {
	// workers=1 must run on the caller's goroutine, in index order.
	var order []int
	Do(5, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order broken: %v", order)
		}
	}
}

func TestDoPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("expected panic \"boom\", got %v", r)
		}
	}()
	Do(100, 4, func(i int) {
		if i == 17 {
			panic("boom")
		}
	})
}

func TestWorkersResolution(t *testing.T) {
	SetDefault(0)
	if got := Workers(0, 1000); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0, 1000) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(8, 3); got != 3 {
		t.Fatalf("Workers(8, 3) = %d, want 3", got)
	}
	SetDefault(5)
	if got := Workers(0, 1000); got != 5 {
		t.Fatalf("after SetDefault(5): Workers(0, 1000) = %d", got)
	}
	if got := Default(); got != 5 {
		t.Fatalf("Default() = %d, want 5", got)
	}
	SetDefault(0)
	if got := Workers(-1, 2); got < 1 || got > 2 {
		t.Fatalf("Workers(-1, 2) = %d out of range", got)
	}
}
