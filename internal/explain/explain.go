package explain

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"grade10/internal/attribution"
	"grade10/internal/core"
	"grade10/internal/vtime"
)

// DefaultSaturationThreshold mirrors bottleneck.Config: a slice is flagged
// saturated when consumption ≥ threshold × capacity.
const DefaultSaturationThreshold = 0.99

// maxTextCells caps the per-phase cell rows printed by WriteText; WriteJSON
// always carries the full chain.
const maxTextCells = 12

// EvalError is the typed failure of Explainer.Explain: the query parsed but
// cannot be answered against this profile.
type EvalError struct {
	Reason string
}

func (e *EvalError) Error() string { return "explain: " + e.Reason }

func evalErr(format string, args ...any) error {
	return &EvalError{Reason: fmt.Sprintf(format, args...)}
}

// Explainer answers explain queries from an attribution profile and the
// provenance its Recorder captured during the same pass. It is immutable
// after construction and safe for concurrent Explain calls.
type Explainer struct {
	Prof *attribution.Profile
	Rec  *Recorder
	// SaturationThreshold flags saturated cells; zero takes the default.
	SaturationThreshold float64
}

// NewExplainer pairs a profile with the recorder that observed its
// attribution pass.
func NewExplainer(prof *attribution.Profile, rec *Recorder) *Explainer {
	return &Explainer{Prof: prof, Rec: rec, SaturationThreshold: DefaultSaturationThreshold}
}

// Derivation is the full answer to one explain query: per instance, per
// phase, the captured chain rule → demand → upsample → share for every
// selected cell, with the profile's own numbers alongside as a cross-check.
type Derivation struct {
	Query string `json:"query"`
	// SpanStartNS/SpanEndNS bound the explained window (clipped to the
	// profile span); Slices counts the timeslices covered.
	SpanStartNS int64 `json:"span_start_ns"`
	SpanEndNS   int64 `json:"span_end_ns"`
	Slices      int   `json:"slices"`

	Instances []*InstanceDerivation `json:"instances,omitempty"`
	Blocking  []*BlockingDerivation `json:"blocking,omitempty"`

	// AttributedUnitSeconds sums the derivation chain; ProfileUnitSeconds
	// sums the profile cells it explains. Equal (to float residue) when the
	// provenance is complete.
	AttributedUnitSeconds float64 `json:"attributed_unit_seconds"`
	ProfileUnitSeconds    float64 `json:"profile_unit_seconds"`
	// DroppedRows counts provenance rows lost to the memory bound; non-zero
	// means chains may be partial.
	DroppedRows int64 `json:"dropped_rows,omitempty"`
}

// InstanceDerivation groups the explained cells of one resource instance.
type InstanceDerivation struct {
	Key      string  `json:"instance"`
	Resource string  `json:"resource"`
	Machine  int     `json:"machine"`
	Capacity float64 `json:"capacity"`

	Phases []*PhaseDerivation `json:"phases"`
}

// PhaseDerivation is the derivation chain of one phase instance on one
// resource instance.
type PhaseDerivation struct {
	Path     string `json:"path"`
	TypePath string `json:"type_path"`
	Machine  int    `json:"machine"`

	RuleKind   string  `json:"rule_kind"`
	RuleAmount float64 `json:"rule_amount"`

	Cells []CellDerivation `json:"cells"`

	// AttributedUnitSeconds is Σ cell share × slice seconds — the number the
	// chain derives. ProfileUnitSeconds is the same cell range read back from
	// the profile's 3-D array.
	AttributedUnitSeconds float64 `json:"attributed_unit_seconds"`
	ProfileUnitSeconds    float64 `json:"profile_unit_seconds"`
}

// CellDerivation explains one (phase, timeslice) cell: the demand estimated
// from the rule, the slice's upsampled consumption and competing demand
// pools, the scarcity split, and the share this phase received.
type CellDerivation struct {
	Slice   int   `json:"slice"`
	StartNS int64 `json:"start_ns"`
	EndNS   int64 `json:"end_ns"`

	// Activity is the phase's active fraction of the slice; Demand is
	// rule.Amount × Activity (units).
	Activity float64 `json:"activity"`
	Demand   float64 `json:"demand"`

	// Consumption is the slice's upsampled rate; TotalExact / TotalVarW the
	// competing Exact and Variable demand pools; ExactScale the scarcity
	// factor applied to Exact shares; Remainder what Variable phases split.
	Consumption float64 `json:"consumption"`
	TotalExact  float64 `json:"total_exact"`
	TotalVarW   float64 `json:"total_var_weight"`
	ExactScale  float64 `json:"exact_scale"`
	Remainder   float64 `json:"remainder"`
	Saturated   bool    `json:"saturated"`

	// ShareRate is the attributed rate (units); UnitSeconds is ShareRate ×
	// slice seconds, the cell's contribution to the attributed total.
	ShareRate   float64 `json:"share_rate"`
	UnitSeconds float64 `json:"unit_seconds"`

	// Upsample lists the monitoring measurements whose mass reached this
	// slice, with the unit·seconds each allocated.
	Upsample []UpsampleContribution `json:"upsample,omitempty"`
}

// UpsampleContribution is one monitoring measurement's allocation into a
// slice (§III-D2).
type UpsampleContribution struct {
	StartNS          int64   `json:"start_ns"`
	EndNS            int64   `json:"end_ns"`
	Avg              float64 `json:"avg"`
	AllocUnitSeconds float64 `json:"alloc_unit_seconds"`
}

// BlockingDerivation explains a blocking (non-consumable) resource: the
// stall intervals logged against matching phases. Blocking resources have no
// attribution cells; their evidence is the trace itself.
type BlockingDerivation struct {
	Resource string          `json:"resource"`
	Phases   []*BlockedPhase `json:"phases"`
	// TotalSeconds sums the clipped stall time across phases (overlaps
	// between phases not unioned — same accounting as the report).
	TotalSeconds float64 `json:"total_seconds"`
}

// BlockedPhase lists one phase's stalls on a blocking resource within the
// queried window.
type BlockedPhase struct {
	Path      string          `json:"path"`
	TypePath  string          `json:"type_path"`
	Machine   int             `json:"machine"`
	Intervals []StallInterval `json:"intervals"`
	Seconds   float64         `json:"seconds"`
}

// StallInterval is one clipped blocking interval.
type StallInterval struct {
	StartNS int64 `json:"start_ns"`
	EndNS   int64 `json:"end_ns"`
}

// Explain answers a query. It returns *EvalError when the query names a
// phase or resource absent from this profile, or a window outside the
// analyzed span.
func (e *Explainer) Explain(q Query) (*Derivation, error) {
	slices := e.Prof.Slices
	first, last := 0, slices.Count
	t0, t1 := slices.Start, slices.End
	if q.HasRange {
		t0, t1 = vtime.Max(q.T0, slices.Start), vtime.Min(q.T1, slices.End)
		if t1 <= t0 {
			return nil, evalErr("time range %s..%s is outside the analyzed span %s..%s",
				q.T0, q.T1, slices.Start, slices.End)
		}
		first, last = slices.Range(t0, t1)
		if first == last {
			return nil, evalErr("time range %s..%s covers no timeslice", q.T0, q.T1)
		}
	}
	st0, _ := slices.Bounds(first)
	_, st1 := slices.Bounds(last - 1)
	d := &Derivation{
		Query:       q.String(),
		SpanStartNS: int64(st0),
		SpanEndNS:   int64(st1),
		Slices:      last - first,
	}

	resourceKnown := q.Resource == ""
	phaseKnown := q.Phase == ""
	sat := e.SaturationThreshold
	if sat <= 0 {
		sat = DefaultSaturationThreshold
	}

	for i, ip := range e.Prof.Instances {
		ri := ip.Instance
		if q.Resource != "" && ri.Resource.Name != q.Resource {
			continue
		}
		resourceKnown = true
		if q.HasMachine && ri.Machine != q.Machine {
			continue
		}
		var sh *shard
		if e.Rec != nil {
			sh = e.Rec.shardAt(i)
		}
		if sh == nil {
			continue
		}
		d.DroppedRows += sh.dropped
		inst := e.explainInstance(ip, sh, q, first, last, sat)
		if inst == nil {
			continue
		}
		if q.Phase != "" && len(inst.Phases) > 0 {
			phaseKnown = true
		}
		d.Instances = append(d.Instances, inst)
		for _, pd := range inst.Phases {
			d.AttributedUnitSeconds += pd.AttributedUnitSeconds
			d.ProfileUnitSeconds += pd.ProfileUnitSeconds
		}
	}

	// Blocking resources have no consumable instance; answer them (and
	// phase-only queries' stalls) from the trace's blocking intervals.
	if q.Resource == "" || !resourceKnown {
		blocking := e.explainBlocking(q, t0, t1)
		if len(blocking) > 0 {
			resourceKnown = true
			if q.Phase != "" {
				phaseKnown = true
			}
		}
		d.Blocking = blocking
	}

	if !resourceKnown {
		return nil, evalErr("unknown resource %q: not a consumable instance of this profile and no phase was blocked on it", q.Resource)
	}
	if q.Phase != "" && !phaseKnown {
		return nil, evalErr("phase type %q matches no attributed phase in this profile", q.Phase)
	}
	return d, nil
}

// explainInstance joins the shard's four provenance tables for one instance
// over slice range [first, last) and the query's phase filter.
func (e *Explainer) explainInstance(ip *attribution.InstanceProfile, sh *shard,
	q Query, first, last int, sat float64) *InstanceDerivation {
	slices := e.Prof.Slices

	// Index the columnar tables for the join. Key (slice, phase) for demand
	// and share; slice alone for split context and upsample contributions.
	cellKey := func(k int32, p int32) int64 { return int64(k)<<32 | int64(uint32(p)) }
	demandAt := make(map[int64]int, len(sh.dSlice))
	for r := range sh.dSlice {
		demandAt[cellKey(sh.dSlice[r], sh.dPhase[r])] = r
	}
	splitAt := make(map[int32]int, len(sh.sSlice))
	for r := range sh.sSlice {
		splitAt[sh.sSlice[r]] = r
	}
	upsAt := make(map[int32][]int)
	for r := range sh.uSlice {
		upsAt[sh.uSlice[r]] = append(upsAt[sh.uSlice[r]], r)
	}
	type cellShare struct{ row int }
	shareAt := make(map[int64]cellShare, len(sh.hSlice))
	for r := range sh.hSlice {
		shareAt[cellKey(sh.hSlice[r], sh.hPhase[r])] = cellShare{r}
	}

	inst := &InstanceDerivation{
		Key:      sh.key,
		Resource: sh.resource,
		Machine:  sh.machine,
		Capacity: sh.capacity,
	}

	// Phases in intern order — the leaf-major order of the demand pass —
	// which is deterministic for a given input at any worker count.
	for pi, phase := range sh.phases {
		if q.Phase != "" && (phase.Type == nil || phase.Type.Path() != q.Phase) {
			continue
		}
		pd := &PhaseDerivation{
			Path:     phase.Path,
			TypePath: phase.Type.Path(),
			Machine:  phase.Machine,
		}
		usage := ip.UsageOf(phase)
		for k := first; k < last; k++ {
			dr, ok := demandAt[cellKey(int32(k), int32(pi))]
			if !ok {
				continue
			}
			t0, t1 := slices.Bounds(k)
			cell := CellDerivation{
				Slice:    k,
				StartNS:  int64(t0),
				EndNS:    int64(t1),
				Activity: sh.dActivity[dr],
				Demand:   sh.dAmount[dr] * sh.dActivity[dr],
			}
			pd.RuleKind = core.RuleKind(sh.dKind[dr]).String()
			pd.RuleAmount = sh.dAmount[dr]
			if sr, ok := splitAt[int32(k)]; ok {
				cell.Consumption = sh.sCons[sr]
				cell.TotalExact = sh.sExact[sr]
				cell.TotalVarW = sh.sVarW[sr]
				cell.ExactScale = sh.sScale[sr]
				cell.Remainder = sh.sRemainder[sr]
				cell.Saturated = sh.capacity > 0 && sh.sCons[sr] >= sat*sh.capacity
			}
			if hr, ok := shareAt[cellKey(int32(k), int32(pi))]; ok {
				cell.ShareRate = sh.hShare[hr.row]
				cell.UnitSeconds = cell.ShareRate * slices.SliceSeconds(k)
			}
			for _, ur := range upsAt[int32(k)] {
				cell.Upsample = append(cell.Upsample, UpsampleContribution{
					StartNS:          sh.uStart[ur],
					EndNS:            sh.uEnd[ur],
					Avg:              sh.uAvg[ur],
					AllocUnitSeconds: sh.uAlloc[ur],
				})
			}
			pd.AttributedUnitSeconds += cell.UnitSeconds
			if usage != nil {
				pd.ProfileUnitSeconds += usage.Rate(k) * slices.SliceSeconds(k)
			}
			pd.Cells = append(pd.Cells, cell)
		}
		if len(pd.Cells) > 0 {
			inst.Phases = append(inst.Phases, pd)
		}
	}
	if len(inst.Phases) == 0 {
		// Keep resource-only queries alive even when no phase had demand
		// here, but drop phase-filtered instances with no evidence.
		if q.Phase != "" {
			return nil
		}
	}
	return inst
}

// explainBlocking resolves stall evidence for blocking resources from the
// trace: every phase interval blocked on the (optionally named) resource
// inside [t0, t1).
func (e *Explainer) explainBlocking(q Query, t0, t1 vtime.Time) []*BlockingDerivation {
	byResource := map[string]*BlockingDerivation{}
	e.Prof.Trace.Root.Walk(func(p *core.Phase) {
		if q.HasMachine && p.Machine != q.Machine {
			return
		}
		if q.Phase != "" && (p.Type == nil || p.Type.Path() != q.Phase) {
			return
		}
		var bp *BlockedPhase
		for _, b := range p.Blocked {
			if q.Resource != "" && b.Resource != q.Resource {
				continue
			}
			lo, hi := vtime.Max(b.Start, t0), vtime.Min(b.End, t1)
			if hi <= lo {
				continue
			}
			bd := byResource[b.Resource]
			if bd == nil {
				bd = &BlockingDerivation{Resource: b.Resource}
				byResource[b.Resource] = bd
			}
			if bp == nil || bp != lastPhase(bd, p.Path) {
				bp = &BlockedPhase{Path: p.Path, Machine: p.Machine}
				if p.Type != nil {
					bp.TypePath = p.Type.Path()
				}
				bd.Phases = append(bd.Phases, bp)
			}
			sec := hi.Sub(lo).Seconds()
			bp.Intervals = append(bp.Intervals, StallInterval{StartNS: int64(lo), EndNS: int64(hi)})
			bp.Seconds += sec
			bd.TotalSeconds += sec
		}
	})
	names := make([]string, 0, len(byResource))
	for name := range byResource {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*BlockingDerivation, 0, len(names))
	for _, name := range names {
		out = append(out, byResource[name])
	}
	return out
}

// lastPhase returns the most recently appended BlockedPhase of bd when it
// belongs to path, else nil — one phase can stall on several resources, and
// its intervals must land on its own entry per resource.
func lastPhase(bd *BlockingDerivation, path string) *BlockedPhase {
	if n := len(bd.Phases); n > 0 && bd.Phases[n-1].Path == path {
		return bd.Phases[n-1]
	}
	return nil
}

// WriteJSON writes the full derivation as indented JSON.
func (d *Derivation) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// WriteText writes a human-readable derivation chain. Per-phase cell rows
// are capped at maxTextCells (the JSON format carries all of them); every
// printed number traces one step of §III-D, and the per-phase and total
// sums are printed next to the profile's own values so the reader can see
// the chain reproduce the attributed result.
func (d *Derivation) WriteText(w io.Writer) error {
	bw := &errWriter{w: w}
	bw.printf("explain %s\n", d.Query)
	bw.printf("window: %s..%s (%d slices)\n",
		vtime.Time(d.SpanStartNS), vtime.Time(d.SpanEndNS), d.Slices)
	if d.DroppedRows > 0 {
		bw.printf("warning: %d provenance rows dropped by the memory bound; chains may be partial\n", d.DroppedRows)
	}
	for _, inst := range d.Instances {
		bw.printf("\ninstance %s (capacity %s units)\n", inst.Key, trimFloat(inst.Capacity))
		if len(inst.Phases) == 0 {
			bw.printf("  no phase demand recorded in this window\n")
			continue
		}
		for _, pd := range inst.Phases {
			bw.printf("  phase %s\n", pd.Path)
			bw.printf("    rule %s(%s) on %s\n", pd.RuleKind, trimFloat(pd.RuleAmount), inst.Resource)
			shown := len(pd.Cells)
			if shown > maxTextCells {
				shown = maxTextCells
			}
			for _, c := range pd.Cells[:shown] {
				sat := ""
				if c.Saturated {
					sat = " SATURATED"
				}
				bw.printf("    slice %d [%s..%s) activity=%.3f demand=%s consumption=%s/%s exactScale=%.3f remainder=%s share=%s → %s unit·s%s\n",
					c.Slice, vtime.Time(c.StartNS), vtime.Time(c.EndNS),
					c.Activity, trimFloat(c.Demand), trimFloat(c.Consumption),
					trimFloat(inst.Capacity), c.ExactScale, trimFloat(c.Remainder),
					trimFloat(c.ShareRate), trimFloat(c.UnitSeconds), sat)
				for _, u := range c.Upsample {
					bw.printf("      upsample: measurement [%s..%s) avg=%s allocated %s unit·s here\n",
						vtime.Time(u.StartNS), vtime.Time(u.EndNS), trimFloat(u.Avg),
						trimFloat(u.AllocUnitSeconds))
				}
			}
			if rest := len(pd.Cells) - shown; rest > 0 {
				bw.printf("    ... %d more cells (use -format json for all)\n", rest)
			}
			bw.printf("    chain sum: %.6f unit·s over %d cells (profile: %.6f unit·s)\n",
				pd.AttributedUnitSeconds, len(pd.Cells), pd.ProfileUnitSeconds)
		}
	}
	for _, bd := range d.Blocking {
		bw.printf("\nblocking resource %s: %.3fs stalled\n", bd.Resource, bd.TotalSeconds)
		for _, bp := range bd.Phases {
			bw.printf("  phase %s blocked %.3fs over %d interval(s):", bp.Path, bp.Seconds, len(bp.Intervals))
			shown := len(bp.Intervals)
			if shown > maxTextCells {
				shown = maxTextCells
			}
			for _, iv := range bp.Intervals[:shown] {
				bw.printf(" [%s..%s)", vtime.Time(iv.StartNS), vtime.Time(iv.EndNS))
			}
			if rest := len(bp.Intervals) - shown; rest > 0 {
				bw.printf(" … %d more", rest)
			}
			bw.printf("\n")
		}
	}
	if len(d.Instances) > 0 {
		bw.printf("\ntotal: derivation chain sums to %.6f unit·s; profile holds %.6f unit·s\n",
			d.AttributedUnitSeconds, d.ProfileUnitSeconds)
	}
	return bw.err
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// trimFloat renders a float compactly (no trailing zeros) for the text
// derivation chain.
func trimFloat(v float64) string {
	s := fmt.Sprintf("%.4f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimSuffix(s, ".")
}
