// Package explain is Grade10's provenance and explanation layer: an opt-in
// recorder that captures the full derivation chain behind every attributed
// cell (rule fired → estimated demand → upsampling allocation → capacity
// share), and a query engine that answers "why was this phase attributed X
// on this resource?" from the captured evidence — the paper's attribution
// process (§III-D) made inspectable after the fact.
//
// Provenance is stored in compact columnar shards, one per resource
// instance, appended serially by the instance's attribution job in a
// deterministic order, so explain output is byte-identical at any
// -parallelism. Memory is bounded: each shard stops recording past
// MaxCellsPerInstance rows and counts what it dropped.
package explain

import (
	"sync"

	"grade10/internal/attribution"
	"grade10/internal/core"
	"grade10/internal/vtime"
)

// DefaultMaxCellsPerInstance bounds one instance's provenance rows (summed
// over the demand, upsample, slice, and share tables). At ~50 bytes a row
// the default caps a shard near 50 MB — far above any smoke run, low enough
// that a pathological trace cannot exhaust memory silently.
const DefaultMaxCellsPerInstance = 1 << 20

// Recorder implements attribution.Recorder with per-instance columnar
// shards. One Recorder serves one attribution pass; create a fresh one per
// window or run.
type Recorder struct {
	maxCells int

	mu     sync.Mutex
	shards []*shard // indexed by rt.Instances() order; grown under mu
}

// NewRecorder creates a recorder; maxCellsPerInstance <= 0 takes the
// default bound.
func NewRecorder(maxCellsPerInstance int) *Recorder {
	if maxCellsPerInstance <= 0 {
		maxCellsPerInstance = DefaultMaxCellsPerInstance
	}
	return &Recorder{maxCells: maxCellsPerInstance}
}

// InstanceRecorder implements attribution.Recorder. Each per-instance sink
// is written serially by its attribution job; only the shard-table growth
// here is locked.
func (r *Recorder) InstanceRecorder(i int, ri *core.ResourceInstance,
	slices core.Timeslices) attribution.InstanceRecorder {
	sh := &shard{
		key:      ri.Key(),
		resource: ri.Resource.Name,
		machine:  ri.Machine,
		capacity: ri.Resource.Capacity,
		maxCells: r.maxCells,
		phaseIdx: map[*core.Phase]int32{},
	}
	r.mu.Lock()
	for len(r.shards) <= i {
		r.shards = append(r.shards, nil)
	}
	r.shards[i] = sh
	r.mu.Unlock()
	return sh
}

// shardAt returns the shard recorded for instance index i, or nil.
func (r *Recorder) shardAt(i int) *shard {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i < 0 || i >= len(r.shards) {
		return nil
	}
	return r.shards[i]
}

// Bytes returns the approximate retained size of the captured provenance,
// for the grade10_provenance_bytes gauge and memory-bound verification.
func (r *Recorder) Bytes() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var total int64
	for _, sh := range r.shards {
		if sh != nil {
			total += sh.bytes()
		}
	}
	return total
}

// Dropped returns the number of provenance rows discarded by the
// per-instance memory bound.
func (r *Recorder) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var total int64
	for _, sh := range r.shards {
		if sh != nil {
			total += sh.dropped
		}
	}
	return total
}

// shard holds one resource instance's provenance in columnar form: four
// append-only tables (demand, upsample, slice split, share), with phases
// interned once per shard. rows() across the tables is bounded by maxCells.
type shard struct {
	key      string
	resource string
	machine  int
	capacity float64

	maxCells int
	dropped  int64

	phases   []*core.Phase
	phaseIdx map[*core.Phase]int32

	// demand table: one row per (leaf, slice) rule firing, leaf-major.
	dSlice    []int32
	dPhase    []int32
	dKind     []uint8
	dAmount   []float64
	dActivity []float64

	// upsample table: one row per (measurement, slice) allocation.
	uSlice []int32
	uStart []int64
	uEnd   []int64
	uAvg   []float64
	uAlloc []float64

	// slice-split table: one row per slice with consumption and competitors.
	sSlice     []int32
	sCons      []float64
	sExact     []float64
	sVarW      []float64
	sScale     []float64
	sRemainder []float64

	// share table: one row per (slice, active phase), slice-major.
	hSlice    []int32
	hPhase    []int32
	hShare    []float64
	hActivity []float64
}

func (s *shard) rows() int {
	return len(s.dSlice) + len(s.uSlice) + len(s.sSlice) + len(s.hSlice)
}

func (s *shard) full() bool {
	if s.rows() < s.maxCells {
		return false
	}
	s.dropped++
	return true
}

func (s *shard) intern(p *core.Phase) int32 {
	if idx, ok := s.phaseIdx[p]; ok {
		return idx
	}
	idx := int32(len(s.phases))
	s.phases = append(s.phases, p)
	s.phaseIdx[p] = idx
	return idx
}

// Demand implements attribution.InstanceRecorder.
func (s *shard) Demand(k int, phase *core.Phase, rule core.Rule, activity float64) {
	if s.full() {
		return
	}
	s.dSlice = append(s.dSlice, int32(k))
	s.dPhase = append(s.dPhase, s.intern(phase))
	s.dKind = append(s.dKind, uint8(rule.Kind))
	s.dAmount = append(s.dAmount, rule.Amount)
	s.dActivity = append(s.dActivity, activity)
}

// Upsample implements attribution.InstanceRecorder.
func (s *shard) Upsample(k int, mStart, mEnd vtime.Time, avg, allocUnitSeconds float64) {
	if s.full() {
		return
	}
	s.uSlice = append(s.uSlice, int32(k))
	s.uStart = append(s.uStart, int64(mStart))
	s.uEnd = append(s.uEnd, int64(mEnd))
	s.uAvg = append(s.uAvg, avg)
	s.uAlloc = append(s.uAlloc, allocUnitSeconds)
}

// SliceSplit implements attribution.InstanceRecorder.
func (s *shard) SliceSplit(k int, consumption, totalExact, totalVarW, exactScale, remainder float64) {
	if s.full() {
		return
	}
	s.sSlice = append(s.sSlice, int32(k))
	s.sCons = append(s.sCons, consumption)
	s.sExact = append(s.sExact, totalExact)
	s.sVarW = append(s.sVarW, totalVarW)
	s.sScale = append(s.sScale, exactScale)
	s.sRemainder = append(s.sRemainder, remainder)
}

// Share implements attribution.InstanceRecorder.
func (s *shard) Share(k int, phase *core.Phase, rule core.Rule, activity, share float64) {
	if s.full() {
		return
	}
	s.hSlice = append(s.hSlice, int32(k))
	s.hPhase = append(s.hPhase, s.intern(phase))
	s.hShare = append(s.hShare, share)
	s.hActivity = append(s.hActivity, activity)
}

func (s *shard) bytes() int64 {
	n := len(s.dSlice)*(4+4+1+8+8) +
		len(s.uSlice)*(4+8+8+8+8) +
		len(s.sSlice)*(4+8*5) +
		len(s.hSlice)*(4+4+8+8) +
		len(s.phases)*16
	return int64(n)
}
