package explain

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"grade10/internal/core"
	"grade10/internal/vtime"
)

// Query selects the profile cells to explain:
//
//	phase=<type-path> machine=<m> resource=<name> [t0..t1]
//
// Tokens are whitespace-separated. `phase` is a phase type path from the
// execution model (e.g. /pr/execute/superstep/worker/compute/thread);
// `machine` is a machine index or the word "global"; `resource` a resource
// name from the model; the optional bracketed range restricts to virtual
// times [t0, t1) with each endpoint a number plus unit suffix
// (ns, us, µs, ms, s, m). At least one of phase and resource is required;
// unset machine means all machines; unset range means the whole span.
type Query struct {
	Phase    string // type path, "" = all phases
	Resource string // resource name, "" = all resources
	// Machine is the machine filter; HasMachine distinguishes machine=0
	// from unset. core.GlobalMachine selects cluster-global instances.
	Machine    int
	HasMachine bool
	// T0, T1 bound the explained window; HasRange marks them set.
	T0, T1   vtime.Time
	HasRange bool
}

// ParseError is the typed failure of ParseQuery; Token is the offending
// input fragment.
type ParseError struct {
	Token  string
	Reason string
}

func (e *ParseError) Error() string {
	if e.Token == "" {
		return "explain: bad query: " + e.Reason
	}
	return fmt.Sprintf("explain: bad query token %q: %s", e.Token, e.Reason)
}

func parseErr(token, format string, args ...any) error {
	return &ParseError{Token: token, Reason: fmt.Sprintf(format, args...)}
}

// ParseQuery parses the explain query grammar. It returns *ParseError for
// every malformed input and never panics (fuzzed in query_fuzz_test.go).
func ParseQuery(s string) (Query, error) {
	var q Query
	seen := map[string]bool{}
	for _, tok := range strings.Fields(s) {
		if strings.HasPrefix(tok, "[") {
			if seen["range"] {
				return Query{}, parseErr(tok, "duplicate time range")
			}
			seen["range"] = true
			if err := parseRange(tok, &q); err != nil {
				return Query{}, err
			}
			continue
		}
		key, val, ok := strings.Cut(tok, "=")
		if !ok {
			return Query{}, parseErr(tok, "expected key=value or [t0..t1]")
		}
		if val == "" {
			return Query{}, parseErr(tok, "empty value")
		}
		if seen[key] {
			return Query{}, parseErr(tok, "duplicate key %q", key)
		}
		seen[key] = true
		switch key {
		case "phase":
			if !strings.HasPrefix(val, "/") {
				return Query{}, parseErr(tok, "phase type path must start with /")
			}
			if strings.Contains(val, "//") || strings.HasSuffix(val, "/") {
				return Query{}, parseErr(tok, "malformed phase type path")
			}
			q.Phase = val
		case "resource":
			q.Resource = val
		case "machine":
			if val == "global" {
				q.Machine = core.GlobalMachine
			} else {
				m, err := strconv.Atoi(val)
				if err != nil || m < 0 {
					return Query{}, parseErr(tok, "machine must be a non-negative integer or \"global\"")
				}
				q.Machine = m
			}
			q.HasMachine = true
		default:
			return Query{}, parseErr(tok, "unknown key %q (want phase, machine, resource)", key)
		}
	}
	if q.Phase == "" && q.Resource == "" {
		return Query{}, parseErr("", "need at least one of phase= or resource=")
	}
	return q, nil
}

func parseRange(tok string, q *Query) error {
	if !strings.HasSuffix(tok, "]") {
		return parseErr(tok, "unterminated time range (want [t0..t1])")
	}
	body := tok[1 : len(tok)-1]
	lo, hi, ok := strings.Cut(body, "..")
	if !ok {
		return parseErr(tok, "time range needs t0..t1")
	}
	t0, err := parseTime(lo)
	if err != nil {
		return parseErr(tok, "bad range start: %v", err)
	}
	t1, err := parseTime(hi)
	if err != nil {
		return parseErr(tok, "bad range end: %v", err)
	}
	if t1 <= t0 {
		return parseErr(tok, "reversed or empty time range (%s >= %s)", lo, hi)
	}
	q.T0, q.T1, q.HasRange = t0, t1, true
	return nil
}

// timeUnits in decreasing suffix length so "ms" wins over "m" and "s".
var timeUnits = []struct {
	suffix string
	mul    float64
}{
	{"ns", float64(vtime.Nanosecond)},
	{"us", float64(vtime.Microsecond)},
	{"µs", float64(vtime.Microsecond)},
	{"ms", float64(vtime.Millisecond)},
	{"s", float64(vtime.Second)},
	{"m", float64(vtime.Minute)},
}

func parseTime(s string) (vtime.Time, error) {
	if s == "" {
		return 0, fmt.Errorf("empty time")
	}
	for _, u := range timeUnits {
		num, ok := strings.CutSuffix(s, u.suffix)
		if !ok {
			continue
		}
		if num == "" {
			return 0, fmt.Errorf("missing number before %q", u.suffix)
		}
		v, err := strconv.ParseFloat(num, 64)
		if err != nil {
			return 0, fmt.Errorf("bad number %q", num)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return 0, fmt.Errorf("time must be finite and non-negative")
		}
		ns := v * u.mul
		if ns > float64(math.MaxInt64) {
			return 0, fmt.Errorf("time overflows")
		}
		return vtime.Time(ns), nil
	}
	return 0, fmt.Errorf("missing unit suffix on %q (want ns/us/ms/s/m)", s)
}

// String renders the query back in its canonical grammar form; parsing the
// result yields an equal query. Report and profdiff evidence pointers use
// this to print queries the user can paste into -explain or /explain.
func (q Query) String() string {
	var parts []string
	if q.Phase != "" {
		parts = append(parts, "phase="+q.Phase)
	}
	if q.HasMachine {
		if q.Machine == core.GlobalMachine {
			parts = append(parts, "machine=global")
		} else {
			parts = append(parts, fmt.Sprintf("machine=%d", q.Machine))
		}
	}
	if q.Resource != "" {
		parts = append(parts, "resource="+q.Resource)
	}
	if q.HasRange {
		parts = append(parts, fmt.Sprintf("[%dns..%dns]", int64(q.T0), int64(q.T1)))
	}
	return strings.Join(parts, " ")
}
