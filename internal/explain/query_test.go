package explain

import (
	"errors"
	"testing"

	"grade10/internal/core"
	"grade10/internal/vtime"
)

func TestParseQueryOK(t *testing.T) {
	cases := []struct {
		in   string
		want Query
	}{
		{"phase=/job/p1", Query{Phase: "/job/p1"}},
		{"resource=cpu", Query{Resource: "cpu"}},
		{"phase=/a/b resource=net", Query{Phase: "/a/b", Resource: "net"}},
		{"phase=/a machine=3", Query{Phase: "/a", Machine: 3, HasMachine: true}},
		{"phase=/a machine=global",
			Query{Phase: "/a", Machine: core.GlobalMachine, HasMachine: true}},
		{"resource=cpu [1s..2s]",
			Query{Resource: "cpu", T0: at(1), T1: at(2), HasRange: true}},
		{"resource=cpu [500ms..1.5s]",
			Query{Resource: "cpu", T0: vtime.Time(500 * vtime.Millisecond),
				T1: vtime.Time(1500 * vtime.Millisecond), HasRange: true}},
		{"resource=cpu [250us..2ms]",
			Query{Resource: "cpu", T0: vtime.Time(250 * vtime.Microsecond),
				T1: vtime.Time(2 * vtime.Millisecond), HasRange: true}},
		{"resource=cpu [1µs..1m]",
			Query{Resource: "cpu", T0: vtime.Time(vtime.Microsecond),
				T1: vtime.Time(vtime.Minute), HasRange: true}},
		{"resource=cpu [100ns..200ns]",
			Query{Resource: "cpu", T0: 100, T1: 200, HasRange: true}},
		{"  phase=/a   resource=cpu  ", Query{Phase: "/a", Resource: "cpu"}},
	}
	for _, c := range cases {
		got, err := ParseQuery(c.in)
		if err != nil {
			t.Fatalf("ParseQuery(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Fatalf("ParseQuery(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestParseQueryErrors(t *testing.T) {
	cases := []string{
		"",                               // nothing selected
		"   ",                            // whitespace only
		"machine=2",                      // machine without phase/resource
		"[1s..2s]",                       // range without phase/resource
		"phase=",                         // empty value
		"resource=",                      // empty value
		"phase=nope",                     // path must start with /
		"phase=/a//b",                    // empty segment
		"phase=/a/",                      // trailing slash
		"bare-token",                     // not key=value
		"color=red",                      // unknown key
		"phase=/a phase=/b",              // duplicate key
		"resource=cpu resource=net",      // duplicate key
		"machine=-1 phase=/a",            // negative machine
		"machine=two phase=/a",           // non-numeric machine
		"resource=cpu [1s..2s",           // unterminated range
		"resource=cpu [1s-2s]",           // missing ..
		"resource=cpu [2s..1s]",          // reversed range
		"resource=cpu [1s..1s]",          // empty range
		"resource=cpu [..2s]",            // missing start
		"resource=cpu [1s..]",            // missing end
		"resource=cpu [one..2s]",         // bad number
		"resource=cpu [1..2]",            // missing unit
		"resource=cpu [1q..2q]",          // unknown unit
		"resource=cpu [-1s..2s]",         // negative time
		"resource=cpu [NaNs..2s]",        // NaN
		"resource=cpu [Infs..2s]",        // Inf
		"resource=cpu [1e300s..1e301s]",  // overflow
		"resource=cpu [1s..2s] [3s..4s]", // duplicate range
	}
	for _, in := range cases {
		_, err := ParseQuery(in)
		if err == nil {
			t.Fatalf("ParseQuery(%q): expected error", in)
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Fatalf("ParseQuery(%q): want *ParseError, got %T %v", in, err, err)
		}
	}
}

// TestQueryStringRoundTrip: String() renders the canonical grammar; parsing
// it back yields the identical query. This is what makes report/profdiff
// evidence pointers paste-able.
func TestQueryStringRoundTrip(t *testing.T) {
	queries := []Query{
		{Phase: "/job/p1"},
		{Resource: "cpu"},
		{Phase: "/a/b/c", Resource: "net", Machine: 0, HasMachine: true},
		{Phase: "/a", Machine: core.GlobalMachine, HasMachine: true},
		{Resource: "disk", T0: 12345, T1: 67890, HasRange: true},
		{Phase: "/x", Resource: "cpu", Machine: 7, HasMachine: true,
			T0: at(1), T1: at(3), HasRange: true},
	}
	for _, q := range queries {
		back, err := ParseQuery(q.String())
		if err != nil {
			t.Fatalf("ParseQuery(%q): %v", q.String(), err)
		}
		if back != q {
			t.Fatalf("round trip %q: got %+v, want %+v", q.String(), back, q)
		}
	}
}

// FuzzParseQuery is the satellite robustness guard: the parser must return a
// typed *ParseError (never panic) on malformed input, and every accepted
// query must round-trip through its canonical String() form.
func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		"phase=/job/p1 resource=cpu",
		"resource=cpu machine=global [1s..2s]",
		"phase=/a/b machine=0 [500ms..1.5s]",
		"phase=/a//b", "machine=-1", "[2s..1s]", "[1s..2s",
		"resource=cpu [1e309s..2s]", "phase= resource=", "k=v=w",
		"phase=/\x00 resource=\xff", "[..]", "[ns..ns]", "µs",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		q, err := ParseQuery(s)
		if err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("ParseQuery(%q): non-typed error %T %v", s, err, err)
			}
			return
		}
		canon := q.String()
		back, err := ParseQuery(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canon, s, err)
		}
		if back != q {
			t.Fatalf("round trip %q → %q: got %+v, want %+v", s, canon, back, q)
		}
	})
}
