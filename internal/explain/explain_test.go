package explain

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"

	"grade10/internal/attribution"
	"grade10/internal/core"
	"grade10/internal/enginelog"
	"grade10/internal/metrics"
	"grade10/internal/vtime"
)

const sec = vtime.Second

func at(s int64) vtime.Time { return vtime.Time(s) * vtime.Time(sec) }

// fixture is a minimal worked example in the Figure 2 style: three leaf
// phases sharing one cpu of capacity 100 over 6 one-second timeslices, with
// p2 also stalling 1s on the blocking resource "gc".
//
//	p1 [0,2) Variable(1)   p2 [2,4) Exact(50)   p3 [3,4) Variable(1)
//	monitoring: [0,2)=30  [2,4)=60  [4,6)=25
type fixture struct {
	prof   *attribution.Profile
	rec    *Recorder
	slices core.Timeslices
}

func buildFixture(t testing.TB, maxCells int) *fixture {
	t.Helper()
	root := core.NewRootType("job")
	for _, name := range []string{"p1", "p2", "p3"} {
		root.Child(name, false)
	}
	model, err := core.NewExecutionModel(root)
	if err != nil {
		t.Fatal(err)
	}

	var now vtime.Time
	l := enginelog.NewLogger(func() vtime.Time { return now })
	emit := func(t0, t1 vtime.Time, path string) {
		now = t0
		l.StartPhase(path, -1)
		now = t1
		l.EndPhase(path)
	}
	now = at(0)
	l.StartPhase("/job", -1)
	emit(at(0), at(2), "/job/p1")
	now = at(2)
	l.StartPhase("/job/p2", -1)
	now = vtime.Time(3500 * vtime.Millisecond)
	l.BlockedFor("/job/p2", "gc", 1*sec)
	now = at(4)
	l.EndPhase("/job/p2")
	emit(at(3), at(4), "/job/p3")
	now = at(6)
	l.EndPhase("/job")

	tr, err := core.BuildExecutionTrace(l.Log(), model)
	if err != nil {
		t.Fatal(err)
	}

	cpu := &core.Resource{Name: "cpu", Kind: core.Consumable, Capacity: 100}
	ss := &metrics.SampleSeries{}
	for i, a := range []float64{30, 60, 25} {
		ss.Samples = append(ss.Samples, metrics.Sample{
			Start: at(int64(i * 2)), End: at(int64(i*2 + 2)), Avg: a,
		})
	}
	rt := core.NewResourceTrace()
	if err := rt.Add(cpu, core.GlobalMachine, ss); err != nil {
		t.Fatal(err)
	}

	rules := core.NewRuleSet()
	rules.Set("/job/p1", "cpu", core.Variable(1)).
		Set("/job/p2", "cpu", core.Exact(50)).
		Set("/job/p3", "cpu", core.Variable(1))

	slices := core.NewTimeslices(at(0), at(6), 1*sec)
	rec := NewRecorder(maxCells)
	prof, err := attribution.AttributeWindowProv(tr, tr.Leaves(), rt, rules,
		slices, 1, nil, rec)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{prof: prof, rec: rec, slices: slices}
}

func explainQ(t *testing.T, f *fixture, query string) *Derivation {
	t.Helper()
	q, err := ParseQuery(query)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewExplainer(f.prof, f.rec).Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func approx(t *testing.T, what string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("%s = %v, want %v", what, got, want)
	}
}

// TestExplainChainReproducesProfile is the acceptance check: summing the
// printed derivation chain reproduces the profile's attributed value exactly,
// for a single phase and for the whole resource.
func TestExplainChainReproducesProfile(t *testing.T) {
	f := buildFixture(t, 0)

	d := explainQ(t, f, "phase=/job/p2 resource=cpu")
	if len(d.Instances) != 1 || len(d.Instances[0].Phases) != 1 {
		t.Fatalf("want 1 instance × 1 phase, got %d instances", len(d.Instances))
	}
	pd := d.Instances[0].Phases[0]
	if pd.RuleKind != "exact" || pd.RuleAmount != 50 {
		t.Fatalf("rule = %s(%v), want exact(50)", pd.RuleKind, pd.RuleAmount)
	}
	if len(pd.Cells) != 2 {
		t.Fatalf("p2 active in slices 2 and 3, got %d cells", len(pd.Cells))
	}
	var sum float64
	for _, c := range pd.Cells {
		// Exact phases get rule.Amount × activity × exactScale (§III-D3).
		approx(t, "exact share", c.ShareRate, c.Demand*c.ExactScale)
		sum += c.UnitSeconds
	}
	approx(t, "cell sum vs chain total", sum, pd.AttributedUnitSeconds)
	approx(t, "chain vs profile (phase)", pd.AttributedUnitSeconds, pd.ProfileUnitSeconds)
	if pd.ProfileUnitSeconds <= 0 {
		t.Fatal("profile attributed nothing to p2 on cpu")
	}

	whole := explainQ(t, f, "resource=cpu")
	if len(whole.Instances) != 1 {
		t.Fatalf("want 1 cpu instance, got %d", len(whole.Instances))
	}
	paths := map[string]bool{}
	for _, pd := range whole.Instances[0].Phases {
		paths[pd.TypePath] = true
		for _, c := range pd.Cells {
			if pd.RuleKind == "variable" && c.TotalVarW > 0 {
				// Variable phases split the remainder by weight (§III-D3).
				approx(t, "variable share "+pd.Path,
					c.ShareRate, c.Remainder*pd.RuleAmount*c.Activity/c.TotalVarW)
			}
		}
	}
	for _, p := range []string{"/job/p1", "/job/p2", "/job/p3"} {
		if !paths[p] {
			t.Fatalf("resource-wide derivation missing phase %s", p)
		}
	}
	approx(t, "chain vs profile (resource)",
		whole.AttributedUnitSeconds, whole.ProfileUnitSeconds)
	if whole.AttributedUnitSeconds <= 0 {
		t.Fatal("empty resource-wide derivation")
	}
}

// TestExplainRangeClipsCells checks the [t0..t1] window restricts both the
// slice span and the cells in the chain.
func TestExplainRangeClipsCells(t *testing.T) {
	f := buildFixture(t, 0)
	d := explainQ(t, f, "phase=/job/p2 resource=cpu [2s..3s]")
	if d.Slices != 1 {
		t.Fatalf("window [2s..3s) covers 1 slice, got %d", d.Slices)
	}
	pd := d.Instances[0].Phases[0]
	if len(pd.Cells) != 1 || pd.Cells[0].Slice != 2 {
		t.Fatalf("want exactly slice 2, got %+v", pd.Cells)
	}
	approx(t, "clipped chain vs profile", pd.AttributedUnitSeconds, pd.ProfileUnitSeconds)

	// A range clipped to the span still answers; one fully outside errors.
	if _, err := NewExplainer(f.prof, f.rec).Explain(Query{
		Resource: "cpu", T0: at(5), T1: at(20), HasRange: true}); err != nil {
		t.Fatalf("partially overlapping range: %v", err)
	}
	_, err := NewExplainer(f.prof, f.rec).Explain(Query{
		Resource: "cpu", T0: at(10), T1: at(20), HasRange: true})
	var ee *EvalError
	if !errors.As(err, &ee) {
		t.Fatalf("out-of-span range: want *EvalError, got %v", err)
	}
}

// TestExplainBlockingResource checks stall queries are answered from the
// trace: gc has no consumable instance, so the evidence is p2's blocked
// interval, clipped to the queried window.
func TestExplainBlockingResource(t *testing.T) {
	f := buildFixture(t, 0)

	d := explainQ(t, f, "resource=gc")
	if len(d.Instances) != 0 || len(d.Blocking) != 1 {
		t.Fatalf("want pure blocking answer, got %d instances, %d blocking",
			len(d.Instances), len(d.Blocking))
	}
	bd := d.Blocking[0]
	if bd.Resource != "gc" || len(bd.Phases) != 1 {
		t.Fatalf("blocking = %+v", bd)
	}
	bp := bd.Phases[0]
	if bp.TypePath != "/job/p2" || len(bp.Intervals) != 1 {
		t.Fatalf("blocked phase = %+v", bp)
	}
	approx(t, "stall seconds", bp.Seconds, 1.0)
	approx(t, "total stall", bd.TotalSeconds, 1.0)

	// Range clipping applies to stall intervals too: [3s..4s) sees half.
	clipped := explainQ(t, f, "resource=gc [3s..4s]")
	approx(t, "clipped stall", clipped.Blocking[0].TotalSeconds, 0.5)

	// A phase-only query reports consumable cells and stalls together.
	both := explainQ(t, f, "phase=/job/p2")
	if len(both.Instances) != 1 || len(both.Blocking) != 1 {
		t.Fatalf("phase-only: %d instances, %d blocking",
			len(both.Instances), len(both.Blocking))
	}
}

// TestExplainEvalErrors checks unknown names surface as typed *EvalError.
func TestExplainEvalErrors(t *testing.T) {
	f := buildFixture(t, 0)
	ex := NewExplainer(f.prof, f.rec)
	for _, q := range []Query{
		{Resource: "quantum-bus"},
		{Phase: "/job/p9"},
		{Phase: "/job/p9", Resource: "cpu"},
	} {
		_, err := ex.Explain(q)
		var ee *EvalError
		if !errors.As(err, &ee) {
			t.Fatalf("query %q: want *EvalError, got %v", q.String(), err)
		}
	}
}

// TestExplainRenderings smoke-checks both output formats: the text chain
// carries the sums, and the JSON parses back with the same totals.
func TestExplainRenderings(t *testing.T) {
	f := buildFixture(t, 0)
	d := explainQ(t, f, "phase=/job/p2 resource=cpu")

	var text bytes.Buffer
	if err := d.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"explain phase=/job/p2 resource=cpu",
		"rule exact(50) on cpu", "chain sum:", "profile holds"} {
		if !strings.Contains(text.String(), want) {
			t.Fatalf("text derivation missing %q:\n%s", want, text.String())
		}
	}

	var js bytes.Buffer
	if err := d.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var back Derivation
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	approx(t, "JSON round-trip total", back.AttributedUnitSeconds, d.AttributedUnitSeconds)
}

// TestRecorderMemoryBound checks the per-instance row cap: a tiny bound
// drops rows, counts them, and the derivation carries the warning.
func TestRecorderMemoryBound(t *testing.T) {
	f := buildFixture(t, 4)
	if f.rec.Dropped() == 0 {
		t.Fatal("tiny bound dropped nothing")
	}
	if f.rec.Bytes() <= 0 {
		t.Fatal("Bytes() = 0 with rows recorded")
	}
	d := explainQ(t, f, "resource=cpu")
	if d.DroppedRows != f.rec.Dropped() {
		t.Fatalf("derivation DroppedRows = %d, recorder dropped %d",
			d.DroppedRows, f.rec.Dropped())
	}

	unbounded := buildFixture(t, 0)
	if unbounded.rec.Dropped() != 0 {
		t.Fatalf("default bound dropped %d rows on a 6-slice fixture",
			unbounded.rec.Dropped())
	}
}
