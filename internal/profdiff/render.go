package profdiff

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"grade10/internal/vtime"
)

// WriteJSON renders the report as indented JSON with a trailing newline.
// The encoding is stable: struct field order plus pre-sorted slices.
func WriteJSON(w io.Writer, rep *Report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteText renders the ranked human-readable delta report.
func WriteText(w io.Writer, rep *Report) error {
	var b strings.Builder

	fmt.Fprintf(&b, "profile diff: %s -> %s\n", describeRun(rep.A), describeRun(rep.B))
	fmt.Fprintf(&b, "verdict: %s  (makespan %s -> %s, %s, %s; thresholds ±%.0f%%)\n",
		strings.ToUpper(string(rep.Verdict)),
		vtime.Duration(rep.A.MakespanNS), vtime.Duration(rep.B.MakespanNS),
		signedDur(rep.MakespanDeltaNS), signedPct(rep.MakespanRelChange),
		rep.RegressThreshold*100)
	for _, n := range rep.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	if rep.TopRegression != nil {
		writeLocalization(&b, "top regression", rep.TopRegression)
	}
	if rep.TopImprovement != nil {
		writeLocalization(&b, "top improvement", rep.TopImprovement)
	}

	if len(rep.Phases) > 0 {
		fmt.Fprintf(&b, "\nphases (by |delta|):\n")
		tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "  status\tphase type\tmachine\ta\tb\tdelta\trel\n")
		for _, d := range rep.Phases {
			fmt.Fprintf(tw, "  %s\t%s\t%s\t%s\t%s\t%s\t%s\n",
				d.Status, d.TypePath, machineLabel(d.Machine),
				vtime.Duration(d.ATotalNS), vtime.Duration(d.BTotalNS),
				signedDur(d.DeltaNS), signedPct(d.RelChange))
		}
		tw.Flush()
		if rep.PhasesOmitted > 0 {
			fmt.Fprintf(&b, "  (%d rows under the noise floor omitted)\n", rep.PhasesOmitted)
		}
	}

	if len(rep.Bottlenecks) > 0 {
		fmt.Fprintf(&b, "\nbottlenecks:\n")
		tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "  status\tphase type\tresource\tkind\ta\tb\tdelta\n")
		for _, d := range rep.Bottlenecks {
			fmt.Fprintf(tw, "  %s\t%s\t%s\t%s\t%s\t%s\t%s\n",
				d.Status, d.TypePath, d.Resource, d.Kind,
				vtime.Duration(d.ATotalNS), vtime.Duration(d.BTotalNS),
				signedDur(d.DeltaNS))
		}
		tw.Flush()
		fmt.Fprintf(&b, "  evidence pointers (paste into grade10 -explain '...' on either run):\n")
		for _, d := range rep.Bottlenecks {
			fmt.Fprintf(&b, "    %s\n", d.ExplainQuery)
		}
	}

	if len(rep.Issues) > 0 {
		fmt.Fprintf(&b, "\nissues (estimated impact):\n")
		tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "  status\tkind\ttarget\ta\tb\tdelta\n")
		for _, d := range rep.Issues {
			fmt.Fprintf(tw, "  %s\t%s\t%s\t%.1f%%\t%.1f%%\t%s\n",
				d.Status, d.Kind, d.Target,
				d.AImpact*100, d.BImpact*100, signedPct(d.DeltaImpact))
		}
		tw.Flush()
	}

	if len(rep.Bench) > 0 {
		fmt.Fprintf(&b, "\nbench (wall clock, host dependent — not part of the verdict):\n")
		tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "  stage\tconfig\ta ns/op\tb ns/op\tratio\n")
		for _, d := range rep.Bench {
			fmt.Fprintf(tw, "  %s\t%s\t%.0f\t%.0f\t%.2fx\n",
				d.Stage, d.Config, d.ANsPerOp, d.BNsPerOp, d.Ratio)
		}
		tw.Flush()
	}

	_, err := io.WriteString(w, b.String())
	return err
}

func writeLocalization(b *strings.Builder, title string, l *Localization) {
	fmt.Fprintf(b, "%s: %s × %s on %s (%s, %s)\n", title,
		l.TypePath, l.Resource, machineLabel(l.Machine),
		signedDur(l.DeltaNS), signedPct(l.RelChange))
	fmt.Fprintf(b, "  evidence: blocked %+.3fs, bottleneck %+.3fs, attributed %+.3f capacity·s\n",
		l.BlockedDeltaSeconds, l.BottleneckDeltaSeconds, l.AttributedDeltaCapSec)
	if l.ExplainQuery != "" {
		fmt.Fprintf(b, "  explain: %s\n", l.ExplainQuery)
	}
}

func describeRun(r RunRef) string {
	s := r.ID
	if r.Label != "" {
		s += " (" + r.Label + ")"
	}
	return s
}

func machineLabel(m int) string {
	if m < 0 {
		return "-"
	}
	return fmt.Sprintf("m%d", m)
}

func signedDur(ns int64) string {
	if ns < 0 {
		return "-" + vtime.Duration(-ns).String()
	}
	return "+" + vtime.Duration(ns).String()
}

func signedPct(rel float64) string {
	return fmt.Sprintf("%+.1f%%", rel*100)
}
