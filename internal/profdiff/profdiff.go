// Package profdiff is the cross-run comparison engine: it aligns two
// archived performance profiles (profstore.Record) structurally — phase
// summaries by (type path, machine), bottlenecks by (type path, resource,
// kind), issues by (kind, target) — computes the deltas, classifies the run
// pair as improved/regressed/neutral against configurable makespan
// thresholds, and localizes the dominant regression to a leaf phase-type
// path and the resource whose evidence (blocking, bottleneck time,
// attributed consumption) grew the most.
//
// Everything is deterministic: records are built from the deterministic
// pipeline output, every ranking has a total order, and both renderings
// (text and JSON) are byte-identical across -parallelism settings.
package profdiff

import (
	"fmt"
	"sort"

	"grade10/internal/explain"
	"grade10/internal/profstore"
)

// Config tunes classification and reporting.
type Config struct {
	// RegressThreshold: the pair is "regressed" when the makespan grows by
	// more than this fraction. Default 0.05.
	RegressThreshold float64
	// ImproveThreshold: "improved" when the makespan shrinks by more than
	// this fraction. Default 0.05.
	ImproveThreshold float64
	// MinDeltaNS is the noise floor: common phase and bottleneck rows with a
	// smaller absolute delta are omitted from the ranked lists. Default 1ms.
	MinDeltaNS int64
	// MinIssueImpactDelta suppresses issue rows whose impact moved by less
	// than this fraction. Default 0.01.
	MinIssueImpactDelta float64
	// MaxPhaseRows caps the ranked phase table; the omitted count is
	// reported. Default 24.
	MaxPhaseRows int
}

// DefaultConfig returns the default thresholds.
func DefaultConfig() Config {
	return Config{RegressThreshold: 0.05, ImproveThreshold: 0.05,
		MinDeltaNS: 1_000_000, MinIssueImpactDelta: 0.01, MaxPhaseRows: 24}
}

func (c *Config) fill() {
	d := DefaultConfig()
	if c.RegressThreshold == 0 {
		c.RegressThreshold = d.RegressThreshold
	}
	if c.ImproveThreshold == 0 {
		c.ImproveThreshold = d.ImproveThreshold
	}
	if c.MinDeltaNS == 0 {
		c.MinDeltaNS = d.MinDeltaNS
	}
	if c.MinIssueImpactDelta == 0 {
		c.MinIssueImpactDelta = d.MinIssueImpactDelta
	}
	if c.MaxPhaseRows == 0 {
		c.MaxPhaseRows = d.MaxPhaseRows
	}
}

// Verdict classifies a run pair.
type Verdict string

const (
	Improved  Verdict = "improved"
	Regressed Verdict = "regressed"
	Neutral   Verdict = "neutral"
)

// Row statuses for aligned elements.
const (
	StatusCommon      = "common"
	StatusAdded       = "added"
	StatusRemoved     = "removed"
	StatusAppeared    = "appeared"
	StatusDisappeared = "disappeared"
	StatusChanged     = "changed"
)

// RunRef identifies one side of the diff.
type RunRef struct {
	ID         string `json:"id"`
	Label      string `json:"label,omitempty"`
	Engine     string `json:"engine"`
	Job        string `json:"job"`
	Workers    int    `json:"workers"`
	MakespanNS int64  `json:"makespan_ns"`
}

// PhaseDelta compares one (type path, machine) phase summary across runs.
type PhaseDelta struct {
	TypePath string `json:"type_path"`
	Machine  int    `json:"machine"`
	Leaf     bool   `json:"leaf"`
	Status   string `json:"status"` // common | added | removed
	ACount   int    `json:"a_count"`
	BCount   int    `json:"b_count"`
	ATotalNS int64  `json:"a_total_ns"`
	BTotalNS int64  `json:"b_total_ns"`
	DeltaNS  int64  `json:"delta_ns"`
	// RelChange is DeltaNS over ATotalNS (0 for added phases).
	RelChange float64 `json:"rel_change"`
}

// BottleneckDelta compares one (type path, resource, kind) bottleneck row.
type BottleneckDelta struct {
	TypePath string `json:"type_path"`
	Resource string `json:"resource"`
	Kind     string `json:"kind"`
	Status   string `json:"status"` // appeared | disappeared | changed
	ATotalNS int64  `json:"a_total_ns"`
	BTotalNS int64  `json:"b_total_ns"`
	DeltaNS  int64  `json:"delta_ns"`
	// ExplainQuery is a ready-to-paste provenance query (grade10 -explain /
	// GET /explain) that derives this bottleneck's attributed time.
	ExplainQuery string `json:"explain_query"`
}

// IssueDelta compares one (kind, target) issue's estimated impact.
type IssueDelta struct {
	Kind        string  `json:"kind"`
	Target      string  `json:"target"`
	Status      string  `json:"status"` // appeared | disappeared | changed
	AImpact     float64 `json:"a_impact"`
	BImpact     float64 `json:"b_impact"`
	DeltaImpact float64 `json:"delta_impact"`
}

// BenchDelta compares one wall-clock bench stage configuration. Host
// dependent — reported for trajectory reading, never part of the verdict.
type BenchDelta struct {
	Stage    string  `json:"stage"`
	Config   string  `json:"config"`
	ANsPerOp float64 `json:"a_ns_per_op"`
	BNsPerOp float64 `json:"b_ns_per_op"`
	Ratio    float64 `json:"ratio"` // b/a; >1 is slower
}

// Localization names the leaf phase-type path and resource that explain the
// largest makespan movement, with the per-resource evidence that picked the
// resource (all in seconds; attribution normalized by resource capacity).
type Localization struct {
	TypePath string `json:"type_path"`
	Resource string `json:"resource"`
	// Machine is the hardest-hit machine for the phase type (-1 unbound).
	Machine   int     `json:"machine"`
	DeltaNS   int64   `json:"delta_ns"`
	RelChange float64 `json:"rel_change"`
	// Evidence components for Resource, in seconds (capacity-seconds for
	// the attribution term).
	BlockedDeltaSeconds    float64 `json:"blocked_delta_seconds"`
	BottleneckDeltaSeconds float64 `json:"bottleneck_delta_seconds"`
	AttributedDeltaCapSec  float64 `json:"attributed_delta_cap_seconds"`
	// ExplainQuery is a ready-to-paste provenance query (grade10 -explain /
	// GET /explain) that derives the blamed cell on either run.
	ExplainQuery string `json:"explain_query"`
}

// Report is the full structural diff of two archived runs.
type Report struct {
	SchemaVersion int    `json:"schema_version"`
	A             RunRef `json:"a"`
	B             RunRef `json:"b"`

	Verdict           Verdict `json:"verdict"`
	MakespanDeltaNS   int64   `json:"makespan_delta_ns"`
	MakespanRelChange float64 `json:"makespan_rel_change"`
	RegressThreshold  float64 `json:"regress_threshold"`
	ImproveThreshold  float64 `json:"improve_threshold"`

	// Notes flags structural caveats (different engines, jobs, ...).
	Notes []string `json:"notes,omitempty"`

	// TopRegression / TopImprovement localize the dominant movements; nil
	// when no leaf phase moved in that direction.
	TopRegression  *Localization `json:"top_regression,omitempty"`
	TopImprovement *Localization `json:"top_improvement,omitempty"`

	// Phases ranked by |delta| (descending); rows below Config.MinDeltaNS
	// are dropped and counted in PhasesOmitted.
	Phases        []PhaseDelta `json:"phases"`
	PhasesOmitted int          `json:"phases_omitted"`

	Bottlenecks []BottleneckDelta `json:"bottlenecks"`
	Issues      []IssueDelta      `json:"issues"`
	Bench       []BenchDelta      `json:"bench,omitempty"`
}

// Diff aligns and compares two records. The zero Config takes defaults.
func Diff(a, b *profstore.Record, cfg Config) (*Report, error) {
	if a == nil || b == nil {
		return nil, fmt.Errorf("profdiff: nil record")
	}
	cfg.fill()
	rep := &Report{
		SchemaVersion:    profstore.Version,
		A:                runRef(a),
		B:                runRef(b),
		RegressThreshold: cfg.RegressThreshold,
		ImproveThreshold: cfg.ImproveThreshold,
	}
	if a.Engine != b.Engine {
		rep.Notes = append(rep.Notes, fmt.Sprintf("engines differ: %s vs %s", a.Engine, b.Engine))
	}
	if a.Job != b.Job {
		rep.Notes = append(rep.Notes, fmt.Sprintf("jobs differ: %s vs %s", a.Job, b.Job))
	}
	if a.Workers != b.Workers {
		rep.Notes = append(rep.Notes, fmt.Sprintf("worker counts differ: %d vs %d", a.Workers, b.Workers))
	}

	rep.MakespanDeltaNS = b.MakespanNS - a.MakespanNS
	rep.MakespanRelChange = safeRel(a.MakespanNS, b.MakespanNS)
	switch {
	case rep.MakespanRelChange > cfg.RegressThreshold:
		rep.Verdict = Regressed
	case rep.MakespanRelChange < -cfg.ImproveThreshold:
		rep.Verdict = Improved
	default:
		rep.Verdict = Neutral
	}

	phases := diffPhases(a, b)
	rep.TopRegression = localize(a, b, phases, +1)
	rep.TopImprovement = localize(a, b, phases, -1)
	rep.Phases, rep.PhasesOmitted = rankPhases(phases, cfg)
	rep.Bottlenecks = diffBottlenecks(a, b, cfg)
	rep.Issues = diffIssues(a, b, cfg)
	rep.Bench = diffBench(a, b)
	return rep, nil
}

func runRef(r *profstore.Record) RunRef {
	return RunRef{ID: r.ID, Label: r.Label, Engine: r.Engine, Job: r.Job,
		Workers: r.Workers, MakespanNS: r.MakespanNS}
}

// safeRel returns (b-a)/a, or 0 when a is 0 (no baseline to compare).
func safeRel(a, b int64) float64 {
	if a == 0 {
		return 0
	}
	return float64(b-a) / float64(a)
}

type phaseKey struct {
	tp      string
	machine int
}

// diffPhases aligns phase summaries by (type path, machine) and produces
// one delta row per key present in either run.
func diffPhases(a, b *profstore.Record) []PhaseDelta {
	index := func(r *profstore.Record) map[phaseKey]*profstore.PhaseSummary {
		m := make(map[phaseKey]*profstore.PhaseSummary, len(r.Phases))
		for i := range r.Phases {
			ps := &r.Phases[i]
			m[phaseKey{ps.TypePath, ps.Machine}] = ps
		}
		return m
	}
	am, bm := index(a), index(b)
	keys := make([]phaseKey, 0, len(am)+len(bm))
	for k := range am {
		keys = append(keys, k)
	}
	for k := range bm {
		if _, ok := am[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].tp != keys[j].tp {
			return keys[i].tp < keys[j].tp
		}
		return keys[i].machine < keys[j].machine
	})

	out := make([]PhaseDelta, 0, len(keys))
	for _, k := range keys {
		pa, inA := am[k]
		pb, inB := bm[k]
		d := PhaseDelta{TypePath: k.tp, Machine: k.machine}
		switch {
		case inA && inB:
			d.Status = StatusCommon
			d.Leaf = pa.Leaf || pb.Leaf
			d.ACount, d.BCount = pa.Count, pb.Count
			d.ATotalNS, d.BTotalNS = pa.TotalNS, pb.TotalNS
		case inA:
			d.Status = StatusRemoved
			d.Leaf = pa.Leaf
			d.ACount, d.ATotalNS = pa.Count, pa.TotalNS
		default:
			d.Status = StatusAdded
			d.Leaf = pb.Leaf
			d.BCount, d.BTotalNS = pb.Count, pb.TotalNS
		}
		d.DeltaNS = d.BTotalNS - d.ATotalNS
		d.RelChange = safeRel(d.ATotalNS, d.BTotalNS)
		out = append(out, d)
	}
	return out
}

// rankPhases orders rows by descending |delta| (ties broken by type path
// then machine), drops common rows under the noise floor, and caps the list.
func rankPhases(all []PhaseDelta, cfg Config) (rows []PhaseDelta, omitted int) {
	kept := make([]PhaseDelta, 0, len(all))
	for _, d := range all {
		if d.Status == StatusCommon && abs64(d.DeltaNS) < cfg.MinDeltaNS {
			omitted++
			continue
		}
		kept = append(kept, d)
	}
	sort.SliceStable(kept, func(i, j int) bool {
		ai, aj := abs64(kept[i].DeltaNS), abs64(kept[j].DeltaNS)
		if ai != aj {
			return ai > aj
		}
		if kept[i].TypePath != kept[j].TypePath {
			return kept[i].TypePath < kept[j].TypePath
		}
		return kept[i].Machine < kept[j].Machine
	})
	if len(kept) > cfg.MaxPhaseRows {
		omitted += len(kept) - cfg.MaxPhaseRows
		kept = kept[:cfg.MaxPhaseRows]
	}
	return kept, omitted
}

// localize finds the leaf phase type whose total duration moved the most in
// the given direction (+1 regression, -1 improvement), then blames the
// resource with the largest same-direction evidence: blocking-time delta,
// bottleneck-time delta, and capacity-normalized attributed-consumption
// delta, all in seconds. Returns nil when no leaf moved that way.
func localize(a, b *profstore.Record, phases []PhaseDelta, dir int64) *Localization {
	// Aggregate leaf deltas across machines per type path, remembering the
	// hardest-hit machine.
	type agg struct {
		delta      int64
		aTotal     int64
		worstM     int
		worstDelta int64
	}
	byTP := map[string]*agg{}
	order := []string{}
	for _, d := range phases {
		if !d.Leaf {
			continue
		}
		g, ok := byTP[d.TypePath]
		if !ok {
			g = &agg{worstM: d.Machine, worstDelta: d.DeltaNS}
			byTP[d.TypePath] = g
			order = append(order, d.TypePath)
		}
		g.delta += d.DeltaNS
		g.aTotal += d.ATotalNS
		if d.DeltaNS*dir > g.worstDelta*dir {
			g.worstM, g.worstDelta = d.Machine, d.DeltaNS
		}
	}
	best := ""
	for _, tp := range order {
		if byTP[tp].delta*dir <= 0 {
			continue
		}
		if best == "" || byTP[tp].delta*dir > byTP[best].delta*dir ||
			(byTP[tp].delta == byTP[best].delta && tp < best) {
			best = tp
		}
	}
	if best == "" {
		return nil
	}
	g := byTP[best]
	loc := &Localization{TypePath: best, Machine: g.worstM, DeltaNS: g.delta,
		RelChange: safeRel(g.aTotal, g.aTotal+g.delta)}
	loc.Resource, loc.BlockedDeltaSeconds, loc.BottleneckDeltaSeconds,
		loc.AttributedDeltaCapSec = blameResource(a, b, best, dir)
	loc.ExplainQuery = explainQuery(loc.TypePath, loc.Resource)
	return loc
}

// blameResource scores every resource touching the phase type and returns
// the one with the largest same-direction evidence, with its components.
func blameResource(a, b *profstore.Record, tp string, dir int64) (res string, blocked, btl, attr float64) {
	fdir := float64(dir)
	blockedDelta := map[string]float64{}
	addBlocked := func(r *profstore.Record, sign float64) {
		for i := range r.Phases {
			ps := &r.Phases[i]
			if ps.TypePath != tp {
				continue
			}
			for res, ns := range ps.BlockedNS {
				blockedDelta[res] += sign * float64(ns) / 1e9
			}
		}
	}
	addBlocked(b, 1)
	addBlocked(a, -1)

	btlDelta := map[string]float64{}
	addBtl := func(rows []profstore.BottleneckSummary, sign float64) {
		for _, row := range rows {
			if row.TypePath == tp {
				btlDelta[row.Resource] += sign * float64(row.TotalNS) / 1e9
			}
		}
	}
	addBtl(b.Bottlenecks, 1)
	addBtl(a.Bottlenecks, -1)

	// Capacity per resource (for unit·s → capacity·s normalization), taken
	// from whichever record knows the resource.
	capacity := map[string]float64{}
	for _, r := range [][]profstore.ResourceSummary{b.Resources, a.Resources} {
		for _, rs := range r {
			if _, ok := capacity[rs.Resource]; !ok && rs.Capacity > 0 {
				capacity[rs.Resource] = rs.Capacity
			}
		}
	}
	attrDelta := map[string]float64{}
	addAttr := func(cells []profstore.AttributionCell, sign float64) {
		for _, c := range cells {
			if c.TypePath != tp {
				continue
			}
			units := c.UnitSeconds
			if cap := capacity[c.Resource]; cap > 0 {
				units /= cap
			}
			attrDelta[c.Resource] += sign * units
		}
	}
	addAttr(b.Attribution, 1)
	addAttr(a.Attribution, -1)

	resources := map[string]bool{}
	for r := range blockedDelta {
		resources[r] = true
	}
	for r := range btlDelta {
		resources[r] = true
	}
	for r := range attrDelta {
		resources[r] = true
	}
	names := make([]string, 0, len(resources))
	for r := range resources {
		names = append(names, r)
	}
	sort.Strings(names)

	bestScore := 0.0
	for _, r := range names {
		score := max0(fdir*blockedDelta[r]) + max0(fdir*btlDelta[r]) + max0(fdir*attrDelta[r])
		if score > bestScore {
			bestScore = score
			res = r
		}
	}
	if res == "" {
		return "", 0, 0, 0
	}
	return res, blockedDelta[res], btlDelta[res], attrDelta[res]
}

func diffBottlenecks(a, b *profstore.Record, cfg Config) []BottleneckDelta {
	type key struct{ tp, res, kind string }
	index := func(rows []profstore.BottleneckSummary) map[key]profstore.BottleneckSummary {
		m := make(map[key]profstore.BottleneckSummary, len(rows))
		for _, row := range rows {
			m[key{row.TypePath, row.Resource, row.Kind}] = row
		}
		return m
	}
	am, bm := index(a.Bottlenecks), index(b.Bottlenecks)
	keys := map[key]bool{}
	for k := range am {
		keys[k] = true
	}
	for k := range bm {
		keys[k] = true
	}
	out := make([]BottleneckDelta, 0, len(keys))
	for k := range keys {
		ra, inA := am[k]
		rb, inB := bm[k]
		d := BottleneckDelta{TypePath: k.tp, Resource: k.res, Kind: k.kind,
			ATotalNS: ra.TotalNS, BTotalNS: rb.TotalNS,
			ExplainQuery: explainQuery(k.tp, k.res)}
		d.DeltaNS = d.BTotalNS - d.ATotalNS
		switch {
		case inA && inB:
			d.Status = StatusChanged
			if abs64(d.DeltaNS) < cfg.MinDeltaNS {
				continue
			}
		case inB:
			d.Status = StatusAppeared
		default:
			d.Status = StatusDisappeared
		}
		out = append(out, d)
	}
	sort.SliceStable(out, func(i, j int) bool {
		ai, aj := abs64(out[i].DeltaNS), abs64(out[j].DeltaNS)
		if ai != aj {
			return ai > aj
		}
		if out[i].TypePath != out[j].TypePath {
			return out[i].TypePath < out[j].TypePath
		}
		if out[i].Resource != out[j].Resource {
			return out[i].Resource < out[j].Resource
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

func diffIssues(a, b *profstore.Record, cfg Config) []IssueDelta {
	type key struct{ kind, target string }
	index := func(rows []profstore.IssueSummary) map[key]profstore.IssueSummary {
		m := make(map[key]profstore.IssueSummary, len(rows))
		for _, row := range rows {
			m[key{row.Kind, row.Target}] = row
		}
		return m
	}
	am, bm := index(a.Issues), index(b.Issues)
	keys := map[key]bool{}
	for k := range am {
		keys[k] = true
	}
	for k := range bm {
		keys[k] = true
	}
	out := make([]IssueDelta, 0, len(keys))
	for k := range keys {
		ia, inA := am[k]
		ib, inB := bm[k]
		d := IssueDelta{Kind: k.kind, Target: k.target,
			AImpact: ia.Impact, BImpact: ib.Impact}
		d.DeltaImpact = d.BImpact - d.AImpact
		switch {
		case inA && inB:
			d.Status = StatusChanged
			if absf(d.DeltaImpact) < cfg.MinIssueImpactDelta {
				continue
			}
		case inB:
			d.Status = StatusAppeared
		default:
			d.Status = StatusDisappeared
		}
		out = append(out, d)
	}
	sort.SliceStable(out, func(i, j int) bool {
		ai, aj := absf(out[i].DeltaImpact), absf(out[j].DeltaImpact)
		if ai != aj {
			return ai > aj
		}
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Target < out[j].Target
	})
	return out
}

func diffBench(a, b *profstore.Record) []BenchDelta {
	if len(a.Bench) == 0 || len(b.Bench) == 0 {
		return nil
	}
	index := func(stages []profstore.BenchStage) map[string]profstore.BenchStage {
		m := make(map[string]profstore.BenchStage, len(stages))
		for _, s := range stages {
			m[s.Name] = s
		}
		return m
	}
	bm := index(b.Bench)
	var out []BenchDelta
	for _, sa := range a.Bench {
		sb, ok := bm[sa.Name]
		if !ok {
			continue
		}
		cfgs := make([]string, 0, len(sa.NsPerOp))
		for c := range sa.NsPerOp {
			if _, ok := sb.NsPerOp[c]; ok {
				cfgs = append(cfgs, c)
			}
		}
		sort.Strings(cfgs)
		for _, c := range cfgs {
			d := BenchDelta{Stage: sa.Name, Config: c,
				ANsPerOp: sa.NsPerOp[c], BNsPerOp: sb.NsPerOp[c]}
			if d.ANsPerOp > 0 {
				d.Ratio = d.BNsPerOp / d.ANsPerOp
			}
			out = append(out, d)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Stage != out[j].Stage {
			return out[i].Stage < out[j].Stage
		}
		return out[i].Config < out[j].Config
	})
	return out
}

// explainQuery renders the canonical provenance query for a (type path,
// resource) pair, ready to paste into `grade10 -explain` or GET /explain on
// either run of the pair.
func explainQuery(typePath, resource string) string {
	q := explain.Query{Phase: typePath, Resource: resource}
	return q.String()
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func max0(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}
