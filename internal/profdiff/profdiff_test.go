package profdiff

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"grade10/internal/profstore"
)

// baseRecord builds a deterministic synthetic profile whose shape mirrors
// the giraph model: a root job phase plus leaf compute/communicate phases
// on two machines, with attribution, bottleneck, and issue rows.
func baseRecord(id, label string) *profstore.Record {
	const sec = int64(1_000_000_000)
	rec := &profstore.Record{
		Version: profstore.Version, ID: id, Label: label,
		Engine: "giraph", Job: "pagerank", Workers: 2,
		Timeslices: 200, TimesliceNS: 10_000_000, MakespanNS: 10 * sec,
		Phases: []profstore.PhaseSummary{
			{TypePath: "/pagerank", Machine: -1, Count: 1,
				TotalNS: 10 * sec, MeanNS: 10 * sec, MaxNS: 10 * sec},
			{TypePath: "/pagerank/execute/superstep/worker/communicate",
				Machine: 0, Leaf: true, Count: 5, TotalNS: 2 * sec,
				MeanNS: 2 * sec / 5, MaxNS: sec / 2,
				BlockedNS: map[string]int64{"msgqueue": sec / 4}},
			{TypePath: "/pagerank/execute/superstep/worker/communicate",
				Machine: 1, Leaf: true, Count: 5, TotalNS: 2 * sec,
				MeanNS: 2 * sec / 5, MaxNS: sec / 2,
				BlockedNS: map[string]int64{"msgqueue": sec / 5}},
			{TypePath: "/pagerank/execute/superstep/worker/compute/thread",
				Machine: 0, Leaf: true, Count: 20, TotalNS: 4 * sec,
				MeanNS: 4 * sec / 20, MaxNS: sec / 2},
			{TypePath: "/pagerank/execute/superstep/worker/compute/thread",
				Machine: 1, Leaf: true, Count: 20, TotalNS: 4 * sec,
				MeanNS: 4 * sec / 20, MaxNS: sec / 2},
		},
		Resources: []profstore.ResourceSummary{
			{Key: "cpu@0", Resource: "cpu", Machine: 0, Capacity: 8,
				ConsumedUnitSeconds: 30, AttributedUnitSeconds: 28,
				UnattributedUnitSeconds: 2, AvgUtilization: 0.4},
			{Key: "cpu@1", Resource: "cpu", Machine: 1, Capacity: 8,
				ConsumedUnitSeconds: 30, AttributedUnitSeconds: 28,
				UnattributedUnitSeconds: 2, AvgUtilization: 0.4},
			{Key: "net-in@0", Resource: "net-in", Machine: 0, Capacity: 1e9,
				ConsumedUnitSeconds: 4e8, AttributedUnitSeconds: 4e8,
				AvgUtilization: 0.05},
		},
		Attribution: []profstore.AttributionCell{
			{TypePath: "/pagerank/execute/superstep/worker/communicate",
				Resource: "net-in", UnitSeconds: 4e8},
			{TypePath: "/pagerank/execute/superstep/worker/compute/thread",
				Resource: "cpu", UnitSeconds: 24},
		},
		Bottlenecks: []profstore.BottleneckSummary{
			{TypePath: "/pagerank/execute/superstep/worker/compute/thread",
				Resource: "cpu", Kind: "saturation", Phases: 8, TotalNS: sec},
		},
		Issues: []profstore.IssueSummary{
			{Kind: "bottleneck", Target: "cpu", OriginalNS: 10 * sec,
				OptimisticNS: 9 * sec, Impact: 0.10},
			{Kind: "imbalance", Target: "/pagerank/execute/superstep/worker/compute/thread",
				OriginalNS: 10 * sec, OptimisticNS: 95 * sec / 10, Impact: 0.05},
		},
	}
	return rec
}

// regressedRecord slows the compute leaf on machine 1 by ~40% (a CPU noise
// injection signature): longer compute, more blocked/bottleneck/attributed
// CPU evidence, longer makespan.
func regressedRecord() *profstore.Record {
	const sec = int64(1_000_000_000)
	rec := baseRecord("bbbbbbbbbbbb", "noisy")
	rec.MakespanNS = 12 * sec
	rec.Phases[0].TotalNS = 12 * sec
	rec.Phases[0].MeanNS = 12 * sec
	rec.Phases[0].MaxNS = 12 * sec
	// machine 1 compute/thread regresses hard, machine 0 mildly
	rec.Phases[3].TotalNS = 4*sec + sec/2
	rec.Phases[4].TotalNS = 6 * sec
	rec.Phases[4].MaxNS = sec
	rec.Attribution[1].UnitSeconds = 38
	rec.Bottlenecks[0].TotalNS = 3 * sec
	rec.Bottlenecks[0].Phases = 14
	rec.Issues[0].OptimisticNS = 9 * sec
	rec.Issues[0].Impact = 0.25
	rec.Issues[1].Impact = 0.12
	return rec
}

// improvedRecord speeds up communicate (less msgqueue blocking, shorter
// makespan) and drops the CPU saturation bottleneck entirely.
func improvedRecord() *profstore.Record {
	const sec = int64(1_000_000_000)
	rec := baseRecord("cccccccccccc", "tuned")
	rec.MakespanNS = 9 * sec
	rec.Phases[0].TotalNS = 9 * sec
	rec.Phases[0].MeanNS = 9 * sec
	rec.Phases[0].MaxNS = 9 * sec
	rec.Phases[1].TotalNS = 1 * sec
	rec.Phases[1].BlockedNS = map[string]int64{"msgqueue": sec / 20}
	rec.Phases[2].TotalNS = 1 * sec
	rec.Phases[2].BlockedNS = map[string]int64{"msgqueue": sec / 20}
	rec.Bottlenecks = nil
	rec.Issues[0].Impact = 0.02
	return rec
}

// reshapedRecord renames the compute leaf (phase-added/removed case).
func reshapedRecord() *profstore.Record {
	rec := baseRecord("dddddddddddd", "reshaped")
	for i := range rec.Phases {
		rec.Phases[i].TypePath = strings.Replace(rec.Phases[i].TypePath,
			"/compute/thread", "/compute/vectorized", 1)
	}
	for i := range rec.Attribution {
		rec.Attribution[i].TypePath = strings.Replace(rec.Attribution[i].TypePath,
			"/compute/thread", "/compute/vectorized", 1)
	}
	for i := range rec.Bottlenecks {
		rec.Bottlenecks[i].TypePath = strings.Replace(rec.Bottlenecks[i].TypePath,
			"/compute/thread", "/compute/vectorized", 1)
	}
	return rec
}

func goldenCases() map[string]func() (*profstore.Record, *profstore.Record) {
	base := func() *profstore.Record { return baseRecord("aaaaaaaaaaaa", "baseline") }
	return map[string]func() (*profstore.Record, *profstore.Record){
		"regressed":     func() (*profstore.Record, *profstore.Record) { return base(), regressedRecord() },
		"improved":      func() (*profstore.Record, *profstore.Record) { return base(), improvedRecord() },
		"neutral":       func() (*profstore.Record, *profstore.Record) { return base(), baseRecord("eeeeeeeeeeee", "rerun") },
		"phase_reshape": func() (*profstore.Record, *profstore.Record) { return base(), reshapedRecord() },
	}
}

func render(t *testing.T, a, b *profstore.Record) (text, jsonOut []byte) {
	t.Helper()
	rep, err := Diff(a, b, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var tb, jb bytes.Buffer
	if err := WriteText(&tb, rep); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&jb, rep); err != nil {
		t.Fatal(err)
	}
	return tb.Bytes(), jb.Bytes()
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv("GRADE10_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with GRADE10_UPDATE_GOLDEN=1): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s differs from golden.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestGoldenReports(t *testing.T) {
	for name, mk := range goldenCases() {
		t.Run(name, func(t *testing.T) {
			a, b := mk()
			text, jsonOut := render(t, a, b)
			checkGolden(t, name+".txt", text)
			checkGolden(t, name+".json", jsonOut)
		})
	}
}

func TestVerdictsAndLocalization(t *testing.T) {
	base := baseRecord("aaaaaaaaaaaa", "baseline")

	rep, err := Diff(base, regressedRecord(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Regressed {
		t.Fatalf("verdict = %s, want regressed", rep.Verdict)
	}
	if rep.TopRegression == nil {
		t.Fatal("no top regression localized")
	}
	if got := rep.TopRegression.TypePath; !strings.HasSuffix(got, "/compute/thread") {
		t.Errorf("top regression phase = %s, want .../compute/thread", got)
	}
	if rep.TopRegression.Resource != "cpu" {
		t.Errorf("top regression resource = %s, want cpu", rep.TopRegression.Resource)
	}
	if rep.TopRegression.Machine != 1 {
		t.Errorf("top regression machine = %d, want 1 (hardest hit)", rep.TopRegression.Machine)
	}

	rep, err = Diff(base, improvedRecord(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Improved {
		t.Fatalf("verdict = %s, want improved", rep.Verdict)
	}
	if rep.TopImprovement == nil || !strings.HasSuffix(rep.TopImprovement.TypePath, "/communicate") {
		t.Errorf("top improvement = %+v, want .../communicate", rep.TopImprovement)
	}
	// The saturation bottleneck disappeared.
	foundGone := false
	for _, bd := range rep.Bottlenecks {
		if bd.Status == StatusDisappeared && bd.Resource == "cpu" {
			foundGone = true
		}
	}
	if !foundGone {
		t.Error("cpu saturation bottleneck should be reported as disappeared")
	}

	rep, err = Diff(base, baseRecord("eeeeeeeeeeee", "rerun"), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Neutral {
		t.Fatalf("verdict = %s, want neutral", rep.Verdict)
	}
	if rep.TopRegression != nil || rep.TopImprovement != nil {
		t.Errorf("identical runs should localize nothing: %+v %+v",
			rep.TopRegression, rep.TopImprovement)
	}
	if len(rep.Phases) != 0 {
		t.Errorf("identical runs should produce no phase rows, got %d", len(rep.Phases))
	}
}

func TestPhaseAddRemove(t *testing.T) {
	rep, err := Diff(baseRecord("aaaaaaaaaaaa", "baseline"), reshapedRecord(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	added, removed := 0, 0
	for _, d := range rep.Phases {
		switch d.Status {
		case StatusAdded:
			added++
			if !strings.Contains(d.TypePath, "/compute/vectorized") {
				t.Errorf("unexpected added phase %s", d.TypePath)
			}
		case StatusRemoved:
			removed++
			if !strings.Contains(d.TypePath, "/compute/thread") {
				t.Errorf("unexpected removed phase %s", d.TypePath)
			}
		}
	}
	if added != 2 || removed != 2 {
		t.Errorf("added %d removed %d, want 2 and 2", added, removed)
	}
}

func TestThresholdConfig(t *testing.T) {
	base := baseRecord("aaaaaaaaaaaa", "")
	// 20% slower is neutral under a 25% threshold.
	rep, err := Diff(base, regressedRecord(), Config{RegressThreshold: 0.25, ImproveThreshold: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Neutral {
		t.Fatalf("verdict = %s, want neutral with loose thresholds", rep.Verdict)
	}
}

func TestRenderDeterministic(t *testing.T) {
	a, b := baseRecord("aaaaaaaaaaaa", "baseline"), regressedRecord()
	t1, j1 := render(t, a, b)
	t2, j2 := render(t, a, b)
	if !bytes.Equal(t1, t2) || !bytes.Equal(j1, j2) {
		t.Fatal("repeated renders differ")
	}
}
