package attribution

import (
	"math"
	"testing"

	"grade10/internal/core"
	"grade10/internal/enginelog"
	"grade10/internal/metrics"
	"grade10/internal/vtime"
)

const sec = vtime.Second

func at(s int64) vtime.Time { return vtime.Time(s) * vtime.Time(sec) }

// fig2 builds the paper's Figure 2 worked example: four phases P1-P4, three
// resources R1-R3 of capacity 100, 1-second timeslices, 2-slice monitoring.
// The quoted numbers (upsampled 15%/65% on R2 in slices 2-3; P3 getting its
// Exact 50% leaving 15% to P2; P2 pinned at its Exact 80% cap on R3 while R3
// is not saturated in slice 2 and saturated in slice 3) are asserted exactly.
type fig2 struct {
	tr         *core.ExecutionTrace
	rt         *core.ResourceTrace
	rules      *core.RuleSet
	slices     core.Timeslices
	r1, r2, r3 *core.Resource
}

func buildFig2(t testing.TB) *fig2 {
	t.Helper()
	root := core.NewRootType("job")
	for _, name := range []string{"p1", "p2", "p3", "p4"} {
		root.Child(name, false)
	}
	model, err := core.NewExecutionModel(root)
	if err != nil {
		t.Fatal(err)
	}

	var now vtime.Time
	l := enginelog.NewLogger(func() vtime.Time { return now })
	emit := func(t0, t1 vtime.Time, path string) {
		now = t0
		l.StartPhase(path, -1)
		now = t1
		l.EndPhase(path)
	}
	now = at(0)
	l.StartPhase("/job", -1)
	emit(at(0), at(2), "/job/p1")
	emit(at(2), at(4), "/job/p2")
	emit(at(3), at(4), "/job/p3")
	emit(at(4), at(6), "/job/p4")
	now = at(6)
	l.EndPhase("/job")

	tr, err := core.BuildExecutionTrace(l.Log(), model)
	if err != nil {
		t.Fatal(err)
	}

	f := &fig2{tr: tr}
	f.r1 = &core.Resource{Name: "r1", Kind: core.Consumable, Capacity: 100}
	f.r2 = &core.Resource{Name: "r2", Kind: core.Consumable, Capacity: 100}
	f.r3 = &core.Resource{Name: "r3", Kind: core.Consumable, Capacity: 100}

	samples := func(avgs ...float64) *metrics.SampleSeries {
		ss := &metrics.SampleSeries{}
		for i, a := range avgs {
			ss.Samples = append(ss.Samples, metrics.Sample{
				Start: at(int64(i * 2)), End: at(int64(i*2 + 2)), Avg: a,
			})
		}
		return ss
	}
	f.rt = core.NewResourceTrace()
	mustAdd := func(r *core.Resource, ss *metrics.SampleSeries) {
		if err := f.rt.Add(r, core.GlobalMachine, ss); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(f.r1, samples(30, 60, 25))
	mustAdd(f.r2, samples(0, 40, 0))
	mustAdd(f.r3, samples(0, 90, 0))

	f.rules = core.NewRuleSet()
	// The Figure 2(b) rule matrix.
	f.rules.Set("/job/p1", "r1", core.Variable(1)).
		Set("/job/p1", "r2", core.None()).
		Set("/job/p1", "r3", core.None()).
		Set("/job/p2", "r1", core.Variable(2)).
		Set("/job/p2", "r2", core.Variable(1)).
		Set("/job/p2", "r3", core.Exact(80)).
		Set("/job/p3", "r1", core.None()).
		Set("/job/p3", "r2", core.Exact(50)).
		Set("/job/p3", "r3", core.Variable(1)).
		Set("/job/p4", "r1", core.Exact(30)).
		Set("/job/p4", "r2", core.None()).
		Set("/job/p4", "r3", core.None())

	f.slices = core.NewTimeslices(at(0), at(6), 1*sec)
	return f
}

func attributeFig2(t *testing.T) (*fig2, *Profile) {
	t.Helper()
	f := buildFig2(t)
	prof, err := Attribute(f.tr, f.rt, f.rules, f.slices)
	if err != nil {
		t.Fatal(err)
	}
	return f, prof
}

func approx(t *testing.T, what string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("%s = %v, want %v", what, got, want)
	}
}

func TestFigure2UpsamplingR2(t *testing.T) {
	_, prof := attributeFig2(t)
	r2 := prof.Get("r2", core.GlobalMachine)
	if r2 == nil {
		t.Fatal("missing r2 profile")
	}
	// The paper's quoted result: 40% average over slices 2-3 upsamples to
	// 15% and 65%.
	approx(t, "r2 slice2", r2.Consumption[2], 15)
	approx(t, "r2 slice3", r2.Consumption[3], 65)
	for _, k := range []int{0, 1, 4, 5} {
		approx(t, "r2 idle slice", r2.Consumption[k], 0)
	}
	// Demand estimation matrix: slice 2 has only P2 (Variable y); slice 3
	// adds P3 (Exact 50).
	approx(t, "r2 known slice2", r2.KnownDemand[2], 0)
	approx(t, "r2 known slice3", r2.KnownDemand[3], 50)
	approx(t, "r2 varw slice2", r2.VariableWeight[2], 1)
	approx(t, "r2 varw slice3", r2.VariableWeight[3], 1)
}

func TestFigure2AttributionR2(t *testing.T) {
	f, prof := attributeFig2(t)
	r2 := prof.Get("r2", core.GlobalMachine)
	p2 := f.tr.ByPath["/job/p2"]
	p3 := f.tr.ByPath["/job/p3"]
	// Slice 3: Exact gives P3 its 50%, leaving 15% for P2 (paper §III-D3).
	approx(t, "P3 r2 slice3", r2.UsageOf(p3).Rate(3), 50)
	approx(t, "P2 r2 slice3", r2.UsageOf(p2).Rate(3), 15)
	// Slice 2: P2 alone takes the full 15%.
	approx(t, "P2 r2 slice2", r2.UsageOf(p2).Rate(2), 15)
}

func TestFigure2R3ExactCapAndSaturation(t *testing.T) {
	f, prof := attributeFig2(t)
	r3 := prof.Get("r3", core.GlobalMachine)
	p2 := f.tr.ByPath["/job/p2"]
	p3 := f.tr.ByPath["/job/p3"]
	// Slice 2: P2 pinned at its Exact 80 while the resource is below
	// capacity (the paper's non-saturated bottleneck case).
	approx(t, "r3 slice2", r3.Consumption[2], 80)
	approx(t, "P2 r3 slice2", r3.UsageOf(p2).Rate(2), 80)
	// Slice 3: resource saturated at 100; P2 keeps 80, P3 absorbs 20.
	approx(t, "r3 slice3", r3.Consumption[3], 100)
	approx(t, "P2 r3 slice3", r3.UsageOf(p2).Rate(3), 80)
	approx(t, "P3 r3 slice3", r3.UsageOf(p3).Rate(3), 20)
}

func TestFigure2R1ScarceExactScaling(t *testing.T) {
	f, prof := attributeFig2(t)
	r1 := prof.Get("r1", core.GlobalMachine)
	p1 := f.tr.ByPath["/job/p1"]
	p2 := f.tr.ByPath["/job/p2"]
	p4 := f.tr.ByPath["/job/p4"]
	// Slices 0-1: P1 variable, 30 average → 30 each.
	approx(t, "P1 r1 slice0", r1.UsageOf(p1).Rate(0), 30)
	approx(t, "P1 r1 slice1", r1.UsageOf(p1).Rate(1), 30)
	// Slices 2-3: P2 variable weight 2 absorbs the 60 average fully.
	approx(t, "P2 r1 slice2", r1.UsageOf(p2).Rate(2), 60)
	approx(t, "P2 r1 slice3", r1.UsageOf(p2).Rate(3), 60)
	// Slices 4-5: P4 demands Exact 30 but only 25 average was consumed:
	// scarce consumption scales the Exact allocation down.
	approx(t, "P4 r1 slice4", r1.UsageOf(p4).Rate(4), 25)
	approx(t, "P4 r1 slice5", r1.UsageOf(p4).Rate(5), 25)
}

func TestMassConservation(t *testing.T) {
	f, prof := attributeFig2(t)
	for _, ip := range prof.Instances {
		measured := ip.Instance.Samples.TotalConsumption()
		upsampled := 0.0
		for k := 0; k < f.slices.Count; k++ {
			upsampled += ip.Consumption[k] * f.slices.SliceSeconds(k)
		}
		if math.Abs(measured-upsampled) > 1e-6 {
			t.Errorf("%s: upsampled %v, measured %v", ip.Instance.Key(), upsampled, measured)
		}
		// Per slice: attributed + unattributed == consumption.
		for k := 0; k < f.slices.Count; k++ {
			sum := ip.Unattributed[k]
			for _, u := range ip.Usage {
				sum += u.Rate(k)
			}
			if math.Abs(sum-ip.Consumption[k]) > 1e-6 {
				t.Errorf("%s slice %d: attributed %v vs consumption %v",
					ip.Instance.Key(), k, sum, ip.Consumption[k])
			}
		}
	}
}

func TestUpsampledSeries(t *testing.T) {
	f, prof := attributeFig2(t)
	r2 := prof.Get("r2", core.GlobalMachine)
	s := r2.UpsampledSeries(f.slices)
	approx(t, "series at 2.5s", s.At(at(2).Add(sec/2)), 15)
	approx(t, "series at 3.5s", s.At(at(3).Add(sec/2)), 65)
	approx(t, "series after end", s.At(at(7)), 0)
	// Integral equals measured consumption.
	approx(t, "series integral", s.Integral(at(0), at(6)), 80)
}

func TestEstimatedDemand(t *testing.T) {
	_, prof := attributeFig2(t)
	r2 := prof.Get("r2", core.GlobalMachine)
	approx(t, "estimated demand slice3", r2.EstimatedDemand(3), 51)
}

func TestPhaseUsageTotal(t *testing.T) {
	f, prof := attributeFig2(t)
	r2 := prof.Get("r2", core.GlobalMachine)
	p2 := f.tr.ByPath["/job/p2"]
	// P2 on R2: 15 + 15 over two 1-second slices = 30 unit·seconds.
	approx(t, "P2 r2 total", r2.UsageOf(p2).Total(f.slices), 30)
}
