package attribution

import (
	"math"
	"testing"

	"grade10/internal/core"
	"grade10/internal/enginelog"
	"grade10/internal/metrics"
	"grade10/internal/vtime"
)

// buildSimple builds a one-phase trace over [0, endSec) with an Exact rule.
func buildSimple(t *testing.T, endSec int64, rule core.Rule,
	samples []metrics.Sample, width vtime.Duration) (*core.ExecutionTrace, *Profile) {
	t.Helper()
	root := core.NewRootType("job")
	root.Child("a", false)
	model, err := core.NewExecutionModel(root)
	if err != nil {
		t.Fatal(err)
	}
	var now vtime.Time
	l := enginelog.NewLogger(func() vtime.Time { return now })
	now = at(0)
	l.StartPhase("/job", -1)
	l.StartPhase("/job/a", -1)
	now = at(endSec)
	l.EndPhase("/job/a")
	l.EndPhase("/job")
	tr, err := core.BuildExecutionTrace(l.Log(), model)
	if err != nil {
		t.Fatal(err)
	}
	res := &core.Resource{Name: "res", Kind: core.Consumable, Capacity: 100}
	rt := core.NewResourceTrace()
	if err := rt.Add(res, core.GlobalMachine, &metrics.SampleSeries{Samples: samples}); err != nil {
		t.Fatal(err)
	}
	rules := core.NewRuleSet()
	rules.Set("/job/a", "res", rule)
	slices := core.NewTimeslices(at(0), at(endSec), width)
	prof, err := Attribute(tr, rt, rules, slices)
	if err != nil {
		t.Fatal(err)
	}
	return tr, prof
}

// Monitoring windows that do not align with timeslice boundaries must still
// conserve mass and place consumption proportionally.
func TestMisalignedMonitoringWindows(t *testing.T) {
	half := vtime.Time(sec / 2)
	samples := []metrics.Sample{
		{Start: at(0), End: at(1).Add(vtime.Duration(half)), Avg: 30}, // 1.5s window
		{Start: at(1).Add(vtime.Duration(half)), End: at(4), Avg: 60}, // 2.5s window
	}
	_, prof := buildSimple(t, 4, core.Variable(1), samples, sec)
	ip := prof.Get("res", core.GlobalMachine)

	measured := 30*1.5 + 60*2.5
	upsampled := 0.0
	for k := 0; k < 4; k++ {
		upsampled += ip.Consumption[k] // 1-second slices
		if ip.Consumption[k] > 100+1e-9 {
			t.Fatalf("slice %d exceeds capacity: %v", k, ip.Consumption[k])
		}
	}
	if math.Abs(upsampled-measured) > 1e-6 {
		t.Fatalf("mass %v, want %v", upsampled, measured)
	}
	// Slice 1 is split between both windows: 0.5s at each average →
	// (30·0.5 + 60·0.5)/1 = 45 (uniform demand keeps window proportions).
	if math.Abs(ip.Consumption[1]-45) > 1e-6 {
		t.Fatalf("boundary slice consumption %v, want 45", ip.Consumption[1])
	}
}

// Monitoring covering time outside the analyzed span is clipped rather than
// misattributed.
func TestMonitoringBeyondSpanClipped(t *testing.T) {
	samples := []metrics.Sample{
		{Start: at(0), End: at(2), Avg: 40},
		{Start: at(2), End: at(6), Avg: 40}, // extends past the 3s trace
	}
	_, prof := buildSimple(t, 3, core.Variable(1), samples, sec)
	ip := prof.Get("res", core.GlobalMachine)
	total := 0.0
	for k := 0; k < 3; k++ {
		total += ip.Consumption[k]
	}
	// Only the in-span portions count: 40·2 + 40·1 = 120.
	if math.Abs(total-120) > 1e-6 {
		t.Fatalf("in-span mass %v, want 120", total)
	}
}

// A measurement window entirely before the span contributes nothing.
func TestMonitoringBeforeSpanIgnored(t *testing.T) {
	samples := []metrics.Sample{
		{Start: at(0), End: at(2), Avg: 80},
	}
	root := core.NewRootType("job")
	root.Child("a", false)
	model, err := core.NewExecutionModel(root)
	if err != nil {
		t.Fatal(err)
	}
	var now vtime.Time
	l := enginelog.NewLogger(func() vtime.Time { return now })
	now = at(4)
	l.StartPhase("/job", -1)
	l.StartPhase("/job/a", -1)
	now = at(6)
	l.EndPhase("/job/a")
	l.EndPhase("/job")
	tr, err := core.BuildExecutionTrace(l.Log(), model)
	if err != nil {
		t.Fatal(err)
	}
	res := &core.Resource{Name: "res", Kind: core.Consumable, Capacity: 100}
	rt := core.NewResourceTrace()
	if err := rt.Add(res, core.GlobalMachine, &metrics.SampleSeries{Samples: samples}); err != nil {
		t.Fatal(err)
	}
	prof, err := Attribute(tr, rt, core.NewRuleSet(), core.NewTimeslices(at(4), at(6), sec))
	if err != nil {
		t.Fatal(err)
	}
	ip := prof.Get("res", core.GlobalMachine)
	for k, c := range ip.Consumption {
		if c != 0 {
			t.Fatalf("slice %d got %v from out-of-span monitoring", k, c)
		}
	}
}

// Odd timeslice widths that do not divide the span produce a short final
// slice; attribution must handle it without losing mass.
func TestShortFinalSlice(t *testing.T) {
	samples := []metrics.Sample{{Start: at(0), End: at(5), Avg: 20}}
	_, prof := buildSimple(t, 5, core.Variable(1), samples, 1500*vtime.Millisecond)
	ip := prof.Get("res", core.GlobalMachine)
	// Slices: 1.5, 1.5, 1.5, 0.5 seconds.
	widths := []float64{1.5, 1.5, 1.5, 0.5}
	total := 0.0
	for k, w := range widths {
		total += ip.Consumption[k] * w
	}
	if math.Abs(total-100) > 1e-6 {
		t.Fatalf("mass %v, want 100", total)
	}
}
