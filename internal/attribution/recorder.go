package attribution

import (
	"grade10/internal/core"
	"grade10/internal/obs"
	"grade10/internal/par"
	"grade10/internal/vtime"
)

// Recorder receives provenance callbacks from the attribution pass: every
// demand estimate, upsampling allocation, and per-slice share split is
// reported as it is computed, so a consumer (internal/explain) can later
// reconstruct the full derivation chain behind any attributed cell. The
// interface lives here — in the instrumented package — so explain can depend
// on attribution without a cycle.
//
// A nil Recorder disables capture at zero cost: every call site is guarded
// by a nil check on the per-instance sink, and the guarded branches add no
// allocations (see the nil-recorder guard in bench_test.go).
type Recorder interface {
	// InstanceRecorder returns the sink for one resource instance's
	// attribution job, or nil to skip that instance. i is the instance's
	// index in rt.Instances() order; each job runs serially on its own
	// sink, so implementations need no locking inside the sink and can
	// merge shards in index order for deterministic output.
	InstanceRecorder(i int, ri *core.ResourceInstance, slices core.Timeslices) InstanceRecorder
}

// InstanceRecorder is the per-instance provenance sink. Calls arrive in a
// deterministic order for a given input, independent of the worker count:
// Demand leaf-major during demand estimation (§III-D1), Upsample
// measurement-major during upsampling (§III-D2), then SliceSplit and Share
// slice-major during attribution (§III-D3).
type InstanceRecorder interface {
	// Demand records one phase's rule firing in slice k: the rule and the
	// phase's active fraction of the slice. Estimated demand is
	// rule.Amount × activity.
	Demand(k int, phase *core.Phase, rule core.Rule, activity float64)
	// Upsample records the unit·seconds one monitoring measurement
	// [mStart, mEnd) of average rate avg allocated into slice k.
	Upsample(k int, mStart, mEnd vtime.Time, avg, allocUnitSeconds float64)
	// SliceSplit records the slice-level split context: the upsampled
	// consumption rate, the Exact and Variable demand pools of the active
	// phases, the scarcity scale applied to Exact shares, and the
	// remainder rate water-filled across Variable phases.
	SliceSplit(k int, consumption, totalExact, totalVarW, exactScale, remainder float64)
	// Share records one phase's attributed rate in slice k (§III-D3):
	// Exact phases get rule.Amount × activity × exactScale, Variable
	// phases remainder × weight/totalVarW.
	Share(k int, phase *core.Phase, rule core.Rule, activity, share float64)
}

// AttributeWindowProv is AttributeWindowTraced plus provenance capture: a
// non-nil rec receives the full derivation chain of every attributed cell.
// With rec nil it is byte-for-byte the same computation and allocates
// nothing extra.
func AttributeWindowProv(tr *core.ExecutionTrace, leaves []*core.Phase, rt *core.ResourceTrace,
	rules *core.RuleSet, slices core.Timeslices, workers int, tracer *obs.Tracer,
	rec Recorder) (*Profile, error) {
	if slices.Count == 0 {
		return nil, errEmptySpan
	}
	instances := rt.Instances()
	prof := &Profile{Trace: tr, Slices: slices, Rules: rules,
		Instances: make([]*InstanceProfile, 0, len(instances)),
		byKey:     make(map[string]*InstanceProfile, len(instances))}
	results := make([]*InstanceProfile, len(instances))
	errs := make([]error, len(instances))
	par.DoWithWorker(len(instances), workers, func(worker, i int) {
		span := tracer.StartSpan("attribute-instance", worker)
		if tracer.Enabled() {
			// Key() formats a string; only pay for it when tracing is on.
			span.SetDetail(instances[i].Key())
			span.SetItems(int64(slices.Count))
			span.SetWindow(int64(slices.Start), int64(slices.End))
		}
		var ir InstanceRecorder
		if rec != nil {
			ir = rec.InstanceRecorder(i, instances[i], slices)
		}
		results[i], errs[i] = attributeInstance(instances[i], leaves, rules, slices, tracer, worker, ir)
		span.End()
	})
	for i, ri := range instances {
		if errs[i] != nil {
			return nil, errs[i]
		}
		prof.Instances = append(prof.Instances, results[i])
		prof.byKey[ri.Key()] = results[i]
	}
	return prof, nil
}
