package attribution

import (
	"testing"

	"grade10/internal/core"
)

// equalProfiles asserts two profiles are identical in instance order and in
// every per-slice number — the determinism contract of the parallel fan-out.
func equalProfiles(t *testing.T, a, b *Profile) {
	t.Helper()
	if len(a.Instances) != len(b.Instances) {
		t.Fatalf("instance counts differ: %d vs %d", len(a.Instances), len(b.Instances))
	}
	for i := range a.Instances {
		ia, ib := a.Instances[i], b.Instances[i]
		if ia.Instance.Key() != ib.Instance.Key() {
			t.Fatalf("instance %d: key %q vs %q", i, ia.Instance.Key(), ib.Instance.Key())
		}
		eqSlice := func(what string, xs, ys []float64) {
			if len(xs) != len(ys) {
				t.Fatalf("%s %s: lengths %d vs %d", ia.Instance.Key(), what, len(xs), len(ys))
			}
			for k := range xs {
				if xs[k] != ys[k] {
					t.Fatalf("%s %s slice %d: %v vs %v", ia.Instance.Key(), what, k, xs[k], ys[k])
				}
			}
		}
		eqSlice("consumption", ia.Consumption, ib.Consumption)
		eqSlice("known", ia.KnownDemand, ib.KnownDemand)
		eqSlice("varw", ia.VariableWeight, ib.VariableWeight)
		eqSlice("unattributed", ia.Unattributed, ib.Unattributed)
		if len(ia.Usage) != len(ib.Usage) {
			t.Fatalf("%s: usage counts %d vs %d", ia.Instance.Key(), len(ia.Usage), len(ib.Usage))
		}
		for j := range ia.Usage {
			if ia.Usage[j].Phase != ib.Usage[j].Phase {
				t.Fatalf("%s usage %d: phase %q vs %q", ia.Instance.Key(), j,
					ia.Usage[j].Phase.Path, ib.Usage[j].Phase.Path)
			}
			for k := 0; k < len(ia.Consumption); k++ {
				if ia.Usage[j].Rate(k) != ib.Usage[j].Rate(k) {
					t.Fatalf("%s usage %s slice %d: %v vs %v", ia.Instance.Key(),
						ia.Usage[j].Phase.Path, k, ia.Usage[j].Rate(k), ib.Usage[j].Rate(k))
				}
			}
		}
	}
}

// TestAttributeParallelBitIdentical is the determinism guard for the
// instance fan-out: any worker count must produce exactly the serial result,
// bit for bit, because each instance is computed independently and merged in
// rt.Instances() order.
func TestAttributeParallelBitIdentical(t *testing.T) {
	f := buildFig2(t)
	serial, err := AttributeN(f.tr, f.rt, f.rules, f.slices, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8} {
		parallel, err := AttributeN(f.tr, f.rt, f.rules, f.slices, workers)
		if err != nil {
			t.Fatal(err)
		}
		equalProfiles(t, serial, parallel)
	}
	// Profile.Get resolves the same instances in both.
	for _, name := range []string{"r1", "r2", "r3"} {
		p8, _ := AttributeN(f.tr, f.rt, f.rules, f.slices, 8)
		if p8.Get(name, core.GlobalMachine) == nil {
			t.Fatalf("parallel profile missing %s", name)
		}
	}
}
