package attribution

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"grade10/internal/core"
	"grade10/internal/enginelog"
	"grade10/internal/metrics"
	"grade10/internal/vtime"
)

// scenario builds a one-resource trace from explicit phase intervals and
// monitoring samples.
type scenario struct {
	phases  map[string][2]vtime.Time // name → [start, end)
	blocks  map[string][][2]vtime.Time
	rules   map[string]core.Rule
	samples []metrics.Sample
	span    [2]vtime.Time
	width   vtime.Duration
	cap     float64
}

func (sc *scenario) run(t *testing.T) (*core.ExecutionTrace, *Profile) {
	t.Helper()
	root := core.NewRootType("job")
	names := make([]string, 0, len(sc.phases))
	for name := range sc.phases {
		names = append(names, name)
	}
	for _, name := range names {
		root.Child(name, false)
	}
	model, err := core.NewExecutionModel(root)
	if err != nil {
		t.Fatal(err)
	}
	var now vtime.Time
	l := enginelog.NewLogger(func() vtime.Time { return now })
	now = sc.span[0]
	l.StartPhase("/job", -1)
	// Emit deterministic order: starts sorted by time then name.
	type ev struct {
		t     vtime.Time
		start bool
		name  string
	}
	var evs []ev
	for name, iv := range sc.phases {
		evs = append(evs, ev{iv[0], true, name}, ev{iv[1], false, name})
	}
	for i := 0; i < len(evs); i++ {
		for j := i + 1; j < len(evs); j++ {
			less := evs[j].t < evs[i].t ||
				(evs[j].t == evs[i].t && (!evs[j].start && evs[i].start)) ||
				(evs[j].t == evs[i].t && evs[j].start == evs[i].start && evs[j].name < evs[i].name)
			if less {
				evs[i], evs[j] = evs[j], evs[i]
			}
		}
	}
	for _, e := range evs {
		now = e.t
		if e.start {
			l.StartPhase("/job/"+e.name, -1)
		} else {
			l.EndPhase("/job/" + e.name)
		}
	}
	for name, blocks := range sc.blocks {
		for _, b := range blocks {
			now = b[1]
			l.BlockedSince("/job/"+name, "someblocker", b[0])
		}
	}
	now = sc.span[1]
	l.EndPhase("/job")
	tr, err := core.BuildExecutionTrace(l.Log(), model)
	if err != nil {
		t.Fatal(err)
	}

	res := &core.Resource{Name: "res", Kind: core.Consumable, Capacity: sc.cap}
	rt := core.NewResourceTrace()
	if err := rt.Add(res, core.GlobalMachine, &metrics.SampleSeries{Samples: sc.samples}); err != nil {
		t.Fatal(err)
	}
	rules := core.NewRuleSet()
	for name, r := range sc.rules {
		rules.Set("/job/"+name, "res", r)
	}
	// The synthetic root phase "/job" must not compete: its children do.
	rules.Set("/job", "res", core.None())
	slices := core.NewTimeslices(sc.span[0], sc.span[1], sc.width)
	prof, err := Attribute(tr, rt, rules, slices)
	if err != nil {
		t.Fatal(err)
	}
	return tr, prof
}

func TestPartialSliceActivityScalesDemand(t *testing.T) {
	// Phase covers only half of slice 1; Exact demand 10 → demand 5 there.
	sc := &scenario{
		phases: map[string][2]vtime.Time{"a": {at(1).Add(sec / 2), at(3)}},
		rules:  map[string]core.Rule{"a": core.Exact(10)},
		samples: []metrics.Sample{
			{Start: at(0), End: at(4), Avg: 5},
		},
		span: [2]vtime.Time{at(0), at(4)}, width: sec, cap: 100,
	}
	_, prof := sc.run(t)
	ip := prof.Get("res", core.GlobalMachine)
	approx(t, "known slice0", ip.KnownDemand[0], 0)
	approx(t, "known slice1", ip.KnownDemand[1], 5)
	approx(t, "known slice2", ip.KnownDemand[2], 10)
	// Upsampling puts consumption where demand is: 20 unit·seconds over
	// demands (0,5,10,0): demand is satisfied first (5,10), and the 5-unit
	// excess clings to the demand profile → 20·(5/15) and 20·(10/15).
	approx(t, "cons slice0", ip.Consumption[0], 0)
	approx(t, "cons slice1", ip.Consumption[1], 20.0/3)
	approx(t, "cons slice2", ip.Consumption[2], 40.0/3)
	approx(t, "cons slice3", ip.Consumption[3], 0)
}

func TestBlockingSuppressesDemand(t *testing.T) {
	// Phase [0,4) blocked during [1,2): demand vanishes in slice 1 and the
	// upsampled consumption avoids it.
	sc := &scenario{
		phases: map[string][2]vtime.Time{"a": {at(0), at(4)}},
		blocks: map[string][][2]vtime.Time{"a": {{at(1), at(2)}}},
		rules:  map[string]core.Rule{"a": core.Exact(8)},
		samples: []metrics.Sample{
			{Start: at(0), End: at(4), Avg: 6},
		},
		span: [2]vtime.Time{at(0), at(4)}, width: sec, cap: 100,
	}
	_, prof := sc.run(t)
	ip := prof.Get("res", core.GlobalMachine)
	approx(t, "known slice1", ip.KnownDemand[1], 0)
	approx(t, "cons slice1", ip.Consumption[1], 0)
	// 24 unit·seconds spread over slices 0,2,3 by demand 8 each → 8 rate.
	approx(t, "cons slice0", ip.Consumption[0], 8)
	approx(t, "cons slice2", ip.Consumption[2], 8)
	approx(t, "cons slice3", ip.Consumption[3], 8)
}

func TestUnattributedWhenNoRulesApply(t *testing.T) {
	// Consumption exists but the only phase has a None rule: upsampling
	// falls back to spreading, and everything lands in Unattributed.
	sc := &scenario{
		phases: map[string][2]vtime.Time{"a": {at(0), at(2)}},
		rules:  map[string]core.Rule{"a": core.None()},
		samples: []metrics.Sample{
			{Start: at(0), End: at(2), Avg: 10},
		},
		span: [2]vtime.Time{at(0), at(2)}, width: sec, cap: 100,
	}
	_, prof := sc.run(t)
	ip := prof.Get("res", core.GlobalMachine)
	total := 0.0
	for k := range ip.Unattributed {
		total += ip.Unattributed[k]
	}
	approx(t, "unattributed total rate", total, 20)
	if len(ip.Usage) != 0 {
		t.Fatalf("usage = %v", ip.Usage)
	}
}

func TestCapacityRespectedDuringUpsampling(t *testing.T) {
	// Demand concentrated in slice 0 but exceeding capacity: the excess
	// spills into the other slice of the window.
	sc := &scenario{
		phases: map[string][2]vtime.Time{
			"a": {at(0), at(1)}, // Exact 100 (= capacity) in slice 0
			"b": {at(0), at(2)}, // Variable everywhere
		},
		rules: map[string]core.Rule{"a": core.Exact(100), "b": core.Variable(1)},
		samples: []metrics.Sample{
			{Start: at(0), End: at(2), Avg: 75},
		},
		span: [2]vtime.Time{at(0), at(2)}, width: sec, cap: 100,
	}
	_, prof := sc.run(t)
	ip := prof.Get("res", core.GlobalMachine)
	for k, c := range ip.Consumption {
		if c > 100+1e-9 {
			t.Fatalf("slice %d consumption %v exceeds capacity", k, c)
		}
	}
	// 150 unit·seconds: slice 0 takes its cap 100, slice 1 the remaining 50.
	approx(t, "cons slice0", ip.Consumption[0], 100)
	approx(t, "cons slice1", ip.Consumption[1], 50)
}

func TestMachineScopedCompetition(t *testing.T) {
	// Two phases on different machines; per-machine resource instances only
	// see their own phase.
	root := core.NewRootType("job")
	root.Child("w", true)
	model, err := core.NewExecutionModel(root)
	if err != nil {
		t.Fatal(err)
	}
	var now vtime.Time
	l := enginelog.NewLogger(func() vtime.Time { return now })
	l.StartPhase("/job", -1)
	l.StartPhase("/job/w.0", 0)
	l.StartPhase("/job/w.1", 1)
	now = at(2)
	l.EndPhase("/job/w.0")
	l.EndPhase("/job/w.1")
	l.EndPhase("/job")
	tr, err := core.BuildExecutionTrace(l.Log(), model)
	if err != nil {
		t.Fatal(err)
	}
	res := &core.Resource{Name: "cpu", Kind: core.Consumable, Capacity: 4, PerMachine: true}
	rt := core.NewResourceTrace()
	for m := 0; m < 2; m++ {
		avg := float64(m + 1)
		err := rt.Add(res, m, &metrics.SampleSeries{Samples: []metrics.Sample{
			{Start: at(0), End: at(2), Avg: avg},
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
	rules := core.NewRuleSet()
	rules.Set("/job", "cpu", core.None())
	slices := core.NewTimeslices(at(0), at(2), sec)
	prof, err := Attribute(tr, rt, rules, slices)
	if err != nil {
		t.Fatal(err)
	}
	w0 := tr.ByPath["/job/w.0"]
	w1 := tr.ByPath["/job/w.1"]
	cpu0 := prof.Get("cpu", 0)
	cpu1 := prof.Get("cpu", 1)
	if cpu0.UsageOf(w1) != nil || cpu1.UsageOf(w0) != nil {
		t.Fatal("cross-machine attribution")
	}
	approx(t, "w0 on cpu0", cpu0.UsageOf(w0).Rate(0), 1)
	approx(t, "w1 on cpu1", cpu1.UsageOf(w1).Rate(0), 2)
}

func TestEmptySliceSpanRejected(t *testing.T) {
	f := buildFig2(t)
	empty := core.NewTimeslices(at(0), at(0), sec)
	if _, err := Attribute(f.tr, f.rt, f.rules, empty); err == nil {
		t.Fatal("empty span accepted")
	}
}

// Property: upsampling conserves mass and never exceeds capacity, for random
// phase layouts and monitoring data.
func TestUpsamplingConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		spanSlices := 4 + rng.Intn(12)
		sc := &scenario{
			phases: map[string][2]vtime.Time{},
			rules:  map[string]core.Rule{},
			span:   [2]vtime.Time{at(0), at(int64(spanSlices))},
			width:  sec,
			cap:    100,
		}
		names := []string{"a", "b", "c", "d"}
		for _, n := range names[:1+rng.Intn(4)] {
			s := rng.Intn(spanSlices)
			e := s + 1 + rng.Intn(spanSlices-s)
			sc.phases[n] = [2]vtime.Time{at(int64(s)), at(int64(e))}
			switch rng.Intn(3) {
			case 0:
				sc.rules[n] = core.Exact(float64(5 + rng.Intn(50)))
			case 1:
				sc.rules[n] = core.Variable(float64(1 + rng.Intn(3)))
			default:
				sc.rules[n] = core.None()
			}
		}
		// Random monitoring windows of 2 slices.
		for s := 0; s < spanSlices; s += 2 {
			e := s + 2
			if e > spanSlices {
				e = spanSlices
			}
			sc.samples = append(sc.samples, metrics.Sample{
				Start: at(int64(s)), End: at(int64(e)), Avg: rng.Float64() * 100,
			})
		}
		_, prof := sc.run(t)
		ip := prof.Get("res", core.GlobalMachine)
		measured := ip.Instance.Samples.TotalConsumption()
		upsampled := 0.0
		for k := 0; k < spanSlices; k++ {
			c := ip.Consumption[k]
			if c < -1e-9 || c > 100+1e-6 {
				return false
			}
			upsampled += c // 1-second slices
			// Attribution completeness.
			sum := ip.Unattributed[k]
			for _, u := range ip.Usage {
				sum += u.Rate(k)
			}
			if math.Abs(sum-c) > 1e-6 {
				return false
			}
		}
		return math.Abs(measured-upsampled) < 1e-6*(1+measured)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
