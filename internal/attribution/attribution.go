// Package attribution implements Grade10's resource attribution process
// (§III-D of the paper), the framework's core contribution. Given an
// execution trace (timeslice-granular), a resource trace (coarse monitoring
// samples), and attribution rules, it:
//
//  1. estimates per-timeslice resource demand from the None/Exact/Variable
//     rules of the leaf phases active in each slice,
//  2. upsamples each coarse monitoring measurement to timeslice granularity
//     by superimposing the demand estimate on the measured average, and
//  3. attributes the upsampled consumption of each timeslice to individual
//     phases: Exact phases first (proportionally, capped at their demand),
//     then the remainder across Variable phases by relative weight.
//
// The output is the paper's 3-D array — resource × timeslice × phase — plus
// the upsampled utilization series used for bottleneck detection.
package attribution

import (
	"fmt"
	"math"
	"sync"

	"grade10/internal/core"
	"grade10/internal/metrics"
	"grade10/internal/obs"
	"grade10/internal/vtime"
)

// epsilon absorbs floating-point residue in unit·second accounting.
const epsilon = 1e-9

// PhaseUsage is the attributed consumption of one phase on one resource
// instance: Rates[i] is the average rate (resource units) during timeslice
// First+i.
type PhaseUsage struct {
	Phase *core.Phase
	First int
	Rates []float64
}

// Rate returns the attributed rate in slice k (zero outside the span).
func (u *PhaseUsage) Rate(k int) float64 {
	if k < u.First || k >= u.First+len(u.Rates) {
		return 0
	}
	return u.Rates[k-u.First]
}

// Total returns the attributed consumption in unit·seconds.
func (u *PhaseUsage) Total(slices core.Timeslices) float64 {
	total := 0.0
	for i, r := range u.Rates {
		total += r * slices.SliceSeconds(u.First+i)
	}
	return total
}

// InstanceProfile is the attribution result for one resource instance.
type InstanceProfile struct {
	Instance *core.ResourceInstance
	// Consumption[k] is the upsampled average rate during slice k.
	Consumption []float64
	// KnownDemand[k] is the summed Exact demand of active phases (units).
	KnownDemand []float64
	// VariableWeight[k] is the summed Variable weight of active phases.
	VariableWeight []float64
	// Usage lists the per-phase attribution; phases without any attributed
	// consumption on this instance are omitted.
	Usage []*PhaseUsage
	// Unattributed[k] is consumption no rule could absorb (model mismatch
	// diagnostic): consumption in a slice with no active Variable phase that
	// exceeds the Exact demand.
	Unattributed []float64

	byPhase map[*core.Phase]*PhaseUsage
}

// UsageOf returns the usage record of a phase, or nil.
func (ip *InstanceProfile) UsageOf(p *core.Phase) *PhaseUsage { return ip.byPhase[p] }

// UpsampledSeries converts the per-slice consumption into a step function
// over the profiled span.
func (ip *InstanceProfile) UpsampledSeries(slices core.Timeslices) *metrics.Series {
	s := metrics.NewSeries(slices.Count + 1)
	for k := 0; k < slices.Count; k++ {
		t0, _ := slices.Bounds(k)
		s.Set(t0, ip.Consumption[k])
	}
	if slices.Count > 0 {
		s.Set(slices.End, 0)
	}
	return s
}

// EstimatedDemand returns KnownDemand[k] + VariableWeight[k]: the demand
// estimate plotted by the paper's Figure 3, interpreting a variable weight
// of w as "about w units when unconstrained".
func (ip *InstanceProfile) EstimatedDemand(k int) float64 {
	return ip.KnownDemand[k] + ip.VariableWeight[k]
}

// Totals integrates the instance profile over the profiled span: total
// upsampled consumption, the part attributed to phases, and the part no
// rule could absorb, all in unit·seconds. Attribution coverage — the live
// service's headline quality metric — is attributed/consumed.
func (ip *InstanceProfile) Totals(slices core.Timeslices) (consumed, attributed, unattributed float64) {
	for k := 0; k < slices.Count; k++ {
		s := slices.SliceSeconds(k)
		consumed += ip.Consumption[k] * s
		unattributed += ip.Unattributed[k] * s
	}
	for _, u := range ip.Usage {
		attributed += u.Total(slices)
	}
	return consumed, attributed, unattributed
}

// Profile is the full attribution output.
type Profile struct {
	Trace     *core.ExecutionTrace
	Slices    core.Timeslices
	Rules     *core.RuleSet
	Instances []*InstanceProfile

	byKey map[string]*InstanceProfile
}

// Get returns the profile of a resource instance by name and machine, or
// nil.
func (p *Profile) Get(name string, machine int) *InstanceProfile {
	if machine == core.GlobalMachine {
		return p.byKey[name+"@global"]
	}
	return p.byKey[fmt.Sprintf("%s@%d", name, machine)]
}

// competitor is a leaf phase competing for a resource instance.
type competitor struct {
	phase *core.Phase
	rule  core.Rule
	usage *PhaseUsage
}

// Attribute runs the three-step attribution process over every resource
// instance in the trace, fanning instances out over par.Default() workers.
func Attribute(tr *core.ExecutionTrace, rt *core.ResourceTrace, rules *core.RuleSet,
	slices core.Timeslices) (*Profile, error) {
	return AttributeWindowN(tr, tr.Leaves(), rt, rules, slices, 0)
}

// AttributeN is Attribute with an explicit worker count (0 = par.Default()).
func AttributeN(tr *core.ExecutionTrace, rt *core.ResourceTrace, rules *core.RuleSet,
	slices core.Timeslices, workers int) (*Profile, error) {
	return AttributeWindowN(tr, tr.Leaves(), rt, rules, slices, workers)
}

// AttributeWindow runs the same attribution process restricted to the window
// covered by the slices argument: monitoring samples are clipped to the
// window, and leaves contribute only the activity that falls inside it. The
// batch path (Attribute) and the online path (internal/stream) share this
// one implementation; the window is simply the whole run in the batch case.
//
// leaves is the candidate leaf set, normally tr.Leaves() or, when streaming,
// the phases known to overlap the window; phases outside the window are
// harmless (they contribute no demand and are pruned from the usage list).
// The caller must sort leaves by (Start, Path) — the order tr.Leaves()
// returns — so per-slice floating-point accumulation is deterministic.
func AttributeWindow(tr *core.ExecutionTrace, leaves []*core.Phase, rt *core.ResourceTrace,
	rules *core.RuleSet, slices core.Timeslices) (*Profile, error) {
	return AttributeWindowN(tr, leaves, rt, rules, slices, 0)
}

// AttributeWindowN is AttributeWindow with an explicit worker count
// (0 = par.Default()). Instances are attributed concurrently — each
// (resource, machine) pair is independent — and merged into the profile in
// the deterministic rt.Instances() order, so the result is identical for
// every worker count.
func AttributeWindowN(tr *core.ExecutionTrace, leaves []*core.Phase, rt *core.ResourceTrace,
	rules *core.RuleSet, slices core.Timeslices, workers int) (*Profile, error) {
	return AttributeWindowTraced(tr, leaves, rt, rules, slices, workers, nil)
}

// errEmptySpan is the shared empty-window failure of the Attribute* entry
// points.
var errEmptySpan = fmt.Errorf("attribution: empty timeslice span")

// AttributeWindowTraced is AttributeWindowN with self-tracing: each
// per-instance attribution job and its inner upsampling step emit one span to
// tracer, tagged with the worker lane that ran it and the virtual-time window
// attributed. A nil tracer disables tracing with zero added allocations on
// this hot path (every span call is a nil no-op).
func AttributeWindowTraced(tr *core.ExecutionTrace, leaves []*core.Phase, rt *core.ResourceTrace,
	rules *core.RuleSet, slices core.Timeslices, workers int, tracer *obs.Tracer) (*Profile, error) {
	return AttributeWindowProv(tr, leaves, rt, rules, slices, workers, tracer, nil)
}

func attributeInstance(ri *core.ResourceInstance, leaves []*core.Phase,
	rules *core.RuleSet, slices core.Timeslices, tracer *obs.Tracer, worker int,
	rec InstanceRecorder) (*InstanceProfile, error) {
	ip := &InstanceProfile{
		Instance:       ri,
		Consumption:    make([]float64, slices.Count),
		KnownDemand:    make([]float64, slices.Count),
		VariableWeight: make([]float64, slices.Count),
		Unattributed:   make([]float64, slices.Count),
		byPhase:        map[*core.Phase]*PhaseUsage{},
	}

	// Step 0: find competitors and their per-slice activity; accumulate the
	// demand estimation matrix (§III-D1).
	perSlice := make([][]competitorActivity, slices.Count)
	var competitors []*competitor
	for _, leaf := range leaves {
		rule := rules.Get(leaf.Type.Path(), ri.Resource.Name)
		if rule.Kind == core.RuleNone {
			continue
		}
		if ri.Resource.PerMachine && leaf.Machine != ri.Machine {
			continue
		}
		first, last := slices.Range(leaf.Start, leaf.End)
		if first == last {
			continue
		}
		c := &competitor{phase: leaf, rule: rule,
			usage: &PhaseUsage{Phase: leaf, First: first, Rates: make([]float64, last-first)}}
		competitors = append(competitors, c)
		for k := first; k < last; k++ {
			t0, t1 := slices.Bounds(k)
			a := leaf.ActiveFraction(t0, t1)
			if a <= 0 {
				continue
			}
			switch rule.Kind {
			case core.RuleExact:
				ip.KnownDemand[k] += rule.Amount * a
			case core.RuleVariable:
				ip.VariableWeight[k] += rule.Amount * a
			}
			perSlice[k] = append(perSlice[k], competitorActivity{c, a})
			if rec != nil {
				rec.Demand(k, leaf, rule, a)
			}
		}
	}

	// Step 1+2: upsample each monitoring measurement to slice granularity
	// (§III-D2).
	uspan := tracer.StartSpan("upsample", worker)
	if tracer.Enabled() {
		uspan.SetDetail(ri.Key())
		uspan.SetItems(int64(len(ri.Samples.Samples)))
	}
	if err := upsample(ip, ri, slices, rec); err != nil {
		return nil, err
	}
	uspan.End()

	// Step 3: attribute per-slice consumption to phases (§III-D3).
	for k := 0; k < slices.Count; k++ {
		attributeSlice(ip, perSlice[k], k, rec)
	}

	// Keep only phases that received any consumption.
	if len(competitors) > 0 {
		ip.Usage = make([]*PhaseUsage, 0, len(competitors))
	}
	for _, c := range competitors {
		any := false
		for _, r := range c.usage.Rates {
			if r > epsilon {
				any = true
				break
			}
		}
		if any {
			ip.Usage = append(ip.Usage, c.usage)
			ip.byPhase[c.phase] = c.usage
		}
	}
	return ip, nil
}

type competitorActivity struct {
	c        *competitor
	activity float64
}

// upsampleScratch holds the per-measurement working buffers of upsample, one
// flat backing array sliced six ways. Pooled because upsample runs once per
// monitoring sample per instance — the hottest allocation site of the whole
// attribution pass — and concurrently across instances.
type upsampleScratch struct {
	buf []float64
}

var scratchPool = sync.Pool{New: func() any { return new(upsampleScratch) }}

// views returns six zeroed length-n slices backed by the scratch buffer.
func (s *upsampleScratch) views(n int) (dur, capAmt, knownAmt, varW, alloc, head []float64) {
	need := 6 * n
	if cap(s.buf) < need {
		s.buf = make([]float64, need)
	}
	b := s.buf[:need]
	for i := range b {
		b[i] = 0
	}
	return b[:n], b[n : 2*n], b[2*n : 3*n], b[3*n : 4*n], b[4*n : 5*n], b[5*n : 6*n]
}

// upsample distributes each coarse measurement over its timeslices in
// proportion to estimated demand, never exceeding the smaller of demand and
// capacity, with the excess over Exact demand load-balanced across Variable
// demand (§III-D2).
func upsample(ip *InstanceProfile, ri *core.ResourceInstance, slices core.Timeslices,
	rec InstanceRecorder) error {
	capUnit := ri.Resource.Capacity
	scratch := scratchPool.Get().(*upsampleScratch)
	defer scratchPool.Put(scratch)
	for _, smp := range ri.Samples.Samples {
		// Clip the measurement to the analyzed span; consumption outside it
		// is out of scope and must not be squeezed into in-span slices.
		w0 := vtime.Max(smp.Start, slices.Start)
		w1 := vtime.Min(smp.End, slices.End)
		if w1 <= w0 {
			continue
		}
		first, last := slices.Range(w0, w1)
		if first == last {
			continue
		}
		n := last - first
		// Per-slice working buffers: overlap durations with this measurement
		// window, capacity ceiling / Exact demand / variable weight (all in
		// unit·seconds), the allocation being built, and headroom scratch.
		dur, capAmt, knownAmt, varW, alloc, head := scratch.views(n)
		totalKnown := 0.0
		for i := 0; i < n; i++ {
			k := first + i
			t0, t1 := slices.Bounds(k)
			lo, hi := vtime.Max(t0, w0), vtime.Min(t1, w1)
			d := hi.Sub(lo).Seconds()
			if d <= 0 {
				continue
			}
			dur[i] = d
			capAmt[i] = capUnit * d
			knownAmt[i] = math.Min(ip.KnownDemand[k], capUnit) * d
			varW[i] = ip.VariableWeight[k] * d
			totalKnown += knownAmt[i]
		}
		consumption := smp.Avg * w1.Sub(w0).Seconds() // in-span unit·seconds
		if consumption <= epsilon {
			continue
		}

		// First satisfy Exact demand, proportionally when scarce.
		if consumption >= totalKnown {
			copy(alloc, knownAmt)
		} else if totalKnown > 0 {
			f := consumption / totalKnown
			for i := range alloc {
				alloc[i] = knownAmt[i] * f
			}
		}
		leftover := consumption
		for _, a := range alloc {
			leftover -= a
		}

		// Water-fill the remainder proportionally to Variable demand,
		// respecting per-slice capacity headroom.
		leftover = waterFill(alloc, leftover, varW, capAmt)
		// Model mismatch fallbacks, in decreasing order of plausibility:
		// excess consumption clings to the slices with Exact demand first
		// (consumption correlates with demand), then spreads over remaining
		// headroom, and as a last resort over window time, so mass is always
		// conserved.
		if leftover > epsilon {
			leftover = waterFill(alloc, leftover, knownAmt, capAmt)
		}
		if leftover > epsilon {
			for i := range head {
				head[i] = capAmt[i] - alloc[i]
			}
			leftover = waterFill(alloc, leftover, head, capAmt)
		}
		if leftover > epsilon {
			for i := range alloc {
				if dur[i] > 0 {
					alloc[i] += leftover * dur[i] / w1.Sub(w0).Seconds()
				}
			}
		}

		// Consumption[k] is the average rate over the whole slice, so a
		// measurement covering only part of a slice (misaligned windows)
		// contributes its allocation spread over the full slice width;
		// multiple windows touching the same slice then sum correctly.
		for i := 0; i < n; i++ {
			if dur[i] > 0 {
				ip.Consumption[first+i] += alloc[i] / slices.SliceSeconds(first+i)
				if rec != nil {
					rec.Upsample(first+i, w0, w1, smp.Avg, alloc[i])
				}
			}
		}
	}
	return nil
}

// waterFill distributes `amount` across alloc proportionally to weights,
// clipping each bucket at ceil, iterating until the amount is exhausted or
// no bucket can absorb more. It returns the undistributed remainder.
func waterFill(alloc []float64, amount float64, weights, ceil []float64) float64 {
	for amount > epsilon {
		totalW := 0.0
		for i := range weights {
			if weights[i] > 0 && ceil[i]-alloc[i] > epsilon {
				totalW += weights[i]
			}
		}
		if totalW == 0 {
			break
		}
		distributed := 0.0
		for i := range weights {
			if weights[i] <= 0 || ceil[i]-alloc[i] <= epsilon {
				continue
			}
			share := amount * weights[i] / totalW
			if head := ceil[i] - alloc[i]; share > head {
				share = head
			}
			alloc[i] += share
			distributed += share
		}
		if distributed <= epsilon {
			break
		}
		amount -= distributed
	}
	if amount < 0 {
		amount = 0
	}
	return amount
}

// attributeSlice splits the slice's upsampled consumption among the active
// phases: Exact phases proportionally up to their demand, remainder across
// Variable phases by weight (§III-D3).
func attributeSlice(ip *InstanceProfile, active []competitorActivity, k int,
	rec InstanceRecorder) {
	u := ip.Consumption[k]
	if u <= epsilon || len(active) == 0 {
		if u > epsilon {
			ip.Unattributed[k] = u
		}
		return
	}
	totalExact := 0.0
	totalVarW := 0.0
	for _, ca := range active {
		switch ca.c.rule.Kind {
		case core.RuleExact:
			totalExact += ca.c.rule.Amount * ca.activity
		case core.RuleVariable:
			totalVarW += ca.c.rule.Amount * ca.activity
		}
	}
	exactScale := 1.0
	if u < totalExact && totalExact > 0 {
		exactScale = u / totalExact
	}
	givenExact := math.Min(u, totalExact)
	remainder := u - givenExact
	if rec != nil {
		rec.SliceSplit(k, u, totalExact, totalVarW, exactScale, remainder)
	}
	for _, ca := range active {
		var share float64
		switch ca.c.rule.Kind {
		case core.RuleExact:
			share = ca.c.rule.Amount * ca.activity * exactScale
		case core.RuleVariable:
			if totalVarW > 0 {
				share = remainder * ca.c.rule.Amount * ca.activity / totalVarW
			}
		}
		if share > 0 {
			ca.c.usage.Rates[k-ca.c.usage.First] += share
		}
		if rec != nil {
			rec.Share(k, ca.c.phase, ca.c.rule, ca.activity, share)
		}
	}
	if totalVarW == 0 && remainder > epsilon {
		ip.Unattributed[k] = remainder
	}
}
