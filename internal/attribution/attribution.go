// Package attribution implements Grade10's resource attribution process
// (§III-D of the paper), the framework's core contribution. Given an
// execution trace (timeslice-granular), a resource trace (coarse monitoring
// samples), and attribution rules, it:
//
//  1. estimates per-timeslice resource demand from the None/Exact/Variable
//     rules of the leaf phases active in each slice,
//  2. upsamples each coarse monitoring measurement to timeslice granularity
//     by superimposing the demand estimate on the measured average, and
//  3. attributes the upsampled consumption of each timeslice to individual
//     phases: Exact phases first (proportionally, capped at their demand),
//     then the remainder across Variable phases by relative weight.
//
// The output is the paper's 3-D array — resource × timeslice × phase — plus
// the upsampled utilization series used for bottleneck detection.
//
// The inner loop is columnar: competitor metadata lives in parallel arrays,
// per-slice activity in a CSR layout built by a stable counting sort, and
// all per-instance scratch in one pooled arena, so the steady state of a
// multi-instance pass allocates only the result arrays. The row-based
// original survives in the reference subpackage as the bit-for-bit
// equivalence oracle.
package attribution

import (
	"fmt"
	"math"
	"sync"

	"grade10/internal/core"
	"grade10/internal/metrics"
	"grade10/internal/obs"
	"grade10/internal/vtime"
)

// epsilon absorbs floating-point residue in unit·second accounting.
const epsilon = 1e-9

// PhaseUsage is the attributed consumption of one phase on one resource
// instance: Rates[i] is the average rate (resource units) during timeslice
// First+i.
type PhaseUsage struct {
	Phase *core.Phase
	First int
	Rates []float64
}

// Rate returns the attributed rate in slice k (zero outside the span).
func (u *PhaseUsage) Rate(k int) float64 {
	if k < u.First || k >= u.First+len(u.Rates) {
		return 0
	}
	return u.Rates[k-u.First]
}

// Total returns the attributed consumption in unit·seconds.
func (u *PhaseUsage) Total(slices core.Timeslices) float64 {
	total := 0.0
	for i, r := range u.Rates {
		total += r * slices.SliceSeconds(u.First+i)
	}
	return total
}

// InstanceProfile is the attribution result for one resource instance.
// The four per-slice series share one flat backing array (capacity-clipped
// views), so an instance costs a handful of allocations regardless of the
// slice count.
type InstanceProfile struct {
	Instance *core.ResourceInstance
	// Consumption[k] is the upsampled average rate during slice k.
	Consumption []float64
	// KnownDemand[k] is the summed Exact demand of active phases (units).
	KnownDemand []float64
	// VariableWeight[k] is the summed Variable weight of active phases.
	VariableWeight []float64
	// Usage lists the per-phase attribution; phases without any attributed
	// consumption on this instance are omitted.
	Usage []*PhaseUsage
	// Unattributed[k] is consumption no rule could absorb (model mismatch
	// diagnostic): consumption in a slice with no active Variable phase that
	// exceeds the Exact demand.
	Unattributed []float64

	byPhase map[*core.Phase]*PhaseUsage
}

// UsageOf returns the usage record of a phase, or nil.
func (ip *InstanceProfile) UsageOf(p *core.Phase) *PhaseUsage { return ip.byPhase[p] }

// UpsampledSeries converts the per-slice consumption into a step function
// over the profiled span.
func (ip *InstanceProfile) UpsampledSeries(slices core.Timeslices) *metrics.Series {
	s := metrics.NewSeries(slices.Count + 1)
	for k := 0; k < slices.Count; k++ {
		t0, _ := slices.Bounds(k)
		s.Set(t0, ip.Consumption[k])
	}
	if slices.Count > 0 {
		s.Set(slices.End, 0)
	}
	return s
}

// EstimatedDemand returns KnownDemand[k] + VariableWeight[k]: the demand
// estimate plotted by the paper's Figure 3, interpreting a variable weight
// of w as "about w units when unconstrained".
func (ip *InstanceProfile) EstimatedDemand(k int) float64 {
	return ip.KnownDemand[k] + ip.VariableWeight[k]
}

// Totals integrates the instance profile over the profiled span: total
// upsampled consumption, the part attributed to phases, and the part no
// rule could absorb, all in unit·seconds. Attribution coverage — the live
// service's headline quality metric — is attributed/consumed.
func (ip *InstanceProfile) Totals(slices core.Timeslices) (consumed, attributed, unattributed float64) {
	for k := 0; k < slices.Count; k++ {
		s := slices.SliceSeconds(k)
		consumed += ip.Consumption[k] * s
		unattributed += ip.Unattributed[k] * s
	}
	for _, u := range ip.Usage {
		attributed += u.Total(slices)
	}
	return consumed, attributed, unattributed
}

// Profile is the full attribution output.
type Profile struct {
	Trace     *core.ExecutionTrace
	Slices    core.Timeslices
	Rules     *core.RuleSet
	Instances []*InstanceProfile

	byKey map[string]*InstanceProfile
}

// Get returns the profile of a resource instance by name and machine, or
// nil.
func (p *Profile) Get(name string, machine int) *InstanceProfile {
	if machine == core.GlobalMachine {
		return p.byKey[name+"@global"]
	}
	return p.byKey[fmt.Sprintf("%s@%d", name, machine)]
}

// Attribute runs the three-step attribution process over every resource
// instance in the trace, fanning instances out over par.Default() workers.
func Attribute(tr *core.ExecutionTrace, rt *core.ResourceTrace, rules *core.RuleSet,
	slices core.Timeslices) (*Profile, error) {
	return AttributeWindowN(tr, tr.Leaves(), rt, rules, slices, 0)
}

// AttributeN is Attribute with an explicit worker count (0 = par.Default()).
func AttributeN(tr *core.ExecutionTrace, rt *core.ResourceTrace, rules *core.RuleSet,
	slices core.Timeslices, workers int) (*Profile, error) {
	return AttributeWindowN(tr, tr.Leaves(), rt, rules, slices, workers)
}

// AttributeWindow runs the same attribution process restricted to the window
// covered by the slices argument: monitoring samples are clipped to the
// window, and leaves contribute only the activity that falls inside it. The
// batch path (Attribute) and the online path (internal/stream) share this
// one implementation; the window is simply the whole run in the batch case.
//
// leaves is the candidate leaf set, normally tr.Leaves() or, when streaming,
// the phases known to overlap the window; phases outside the window are
// harmless (they contribute no demand and are pruned from the usage list).
// The caller must sort leaves by (Start, Path) — the order tr.Leaves()
// returns — so per-slice floating-point accumulation is deterministic.
func AttributeWindow(tr *core.ExecutionTrace, leaves []*core.Phase, rt *core.ResourceTrace,
	rules *core.RuleSet, slices core.Timeslices) (*Profile, error) {
	return AttributeWindowN(tr, leaves, rt, rules, slices, 0)
}

// AttributeWindowN is AttributeWindow with an explicit worker count
// (0 = par.Default()). Instances are attributed concurrently — each
// (resource, machine) pair is independent — and merged into the profile in
// the deterministic rt.Instances() order, so the result is identical for
// every worker count.
func AttributeWindowN(tr *core.ExecutionTrace, leaves []*core.Phase, rt *core.ResourceTrace,
	rules *core.RuleSet, slices core.Timeslices, workers int) (*Profile, error) {
	return AttributeWindowTraced(tr, leaves, rt, rules, slices, workers, nil)
}

// errEmptySpan is the shared empty-window failure of the Attribute* entry
// points.
var errEmptySpan = fmt.Errorf("attribution: empty timeslice span")

// AttributeWindowTraced is AttributeWindowN with self-tracing: each
// per-instance attribution job and its inner upsampling step emit one span to
// tracer, tagged with the worker lane that ran it and the virtual-time window
// attributed. A nil tracer disables tracing with zero added allocations on
// this hot path (every span call is a nil no-op).
func AttributeWindowTraced(tr *core.ExecutionTrace, leaves []*core.Phase, rt *core.ResourceTrace,
	rules *core.RuleSet, slices core.Timeslices, workers int, tracer *obs.Tracer) (*Profile, error) {
	return AttributeWindowProv(tr, leaves, rt, rules, slices, workers, tracer, nil)
}

// arena is the per-instance scratch of one attribution job, pooled across
// instances and windows. Everything transient lives here — discovery
// entries, competitor metadata, the CSR activity index, and the upsampling
// buffers — so a steady-state attribution pass allocates only its results.
// Indices are int32: a window has far fewer than 2³¹ slices or activity
// entries.
type arena struct {
	// Discovery entries in leaf-major order: entry e says competitor
	// entryComp[e] is active in slice entrySlice[e] for fraction entryAct[e]
	// of the slice.
	entrySlice []int32
	entryComp  []int32
	entryAct   []float64
	// Competitor metadata, parallel arrays indexed by competitor.
	compPhase []*core.Phase
	compRule  []core.Rule
	compFirst []int32
	compLast  []int32
	// CSR activity index: slice k's entries are csrComp/csrAct positions
	// [csrOff[k], csrOff[k+1]). Built by a stable counting sort from the
	// discovery entries, so within a slice competitors keep leaf order and
	// floating-point accumulation matches the row-based oracle bit for bit.
	csrOff  []int32
	csrCur  []int32
	csrComp []int32
	csrAct  []float64
	// fbuf backs the six per-measurement upsampling views.
	fbuf []float64
	// Rule cache for the discovery pass, keyed by leaf type identity: the
	// leaf set repeats a handful of types thousands of times, and hashing
	// the full type-path string per leaf dominates discovery otherwise.
	// Valid for one instance only (the resource name is part of the rule
	// key), so acquireArena clears it.
	ruleTyp []*core.PhaseType
	ruleVal []core.Rule
}

var arenaPool = sync.Pool{New: func() any { return new(arena) }}

// acquireArena returns an arena ready for a new instance: append targets
// empty, capacity retained from previous uses.
func acquireArena() *arena {
	ar := arenaPool.Get().(*arena)
	ar.entrySlice = ar.entrySlice[:0]
	ar.entryComp = ar.entryComp[:0]
	ar.entryAct = ar.entryAct[:0]
	ar.compPhase = ar.compPhase[:0]
	ar.compRule = ar.compRule[:0]
	ar.compFirst = ar.compFirst[:0]
	ar.compLast = ar.compLast[:0]
	ar.ruleTyp = ar.ruleTyp[:0]
	ar.ruleVal = ar.ruleVal[:0]
	return ar
}

// ruleFor is rules.Get memoized by type pointer. Distinct leaf types number
// a dozen or so, so a linear identity scan beats hashing the path string.
// The returned rule is exactly what rules.Get returns, so caching cannot
// change any attributed value.
func (ar *arena) ruleFor(rules *core.RuleSet, typ *core.PhaseType, resource string) core.Rule {
	for i, t := range ar.ruleTyp {
		if t == typ {
			return ar.ruleVal[i]
		}
	}
	r := rules.Get(typ.Path(), resource)
	ar.ruleTyp = append(ar.ruleTyp, typ)
	ar.ruleVal = append(ar.ruleVal, r)
	return r
}

// release drops phase pointers (so a pooled arena never pins a retired
// trace) and returns the arena to the pool.
func (ar *arena) release() {
	for i := range ar.compPhase {
		ar.compPhase[i] = nil
	}
	for i := range ar.ruleTyp {
		ar.ruleTyp[i] = nil
	}
	arenaPool.Put(ar)
}

// growI32 returns s with length n, reallocating only when capacity is
// short. Contents are unspecified; callers overwrite every element they
// read.
func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// upsampleViews returns six zeroed length-n slices backed by fbuf.
func (ar *arena) upsampleViews(n int) (dur, capAmt, knownAmt, varW, alloc, head []float64) {
	need := 6 * n
	if cap(ar.fbuf) < need {
		ar.fbuf = make([]float64, need)
	}
	b := ar.fbuf[:need]
	for i := range b {
		b[i] = 0
	}
	return b[:n], b[n : 2*n], b[2*n : 3*n], b[3*n : 4*n], b[4*n : 5*n], b[5*n : 6*n]
}

func attributeInstance(ri *core.ResourceInstance, leaves []*core.Phase,
	rules *core.RuleSet, slices core.Timeslices, tracer *obs.Tracer, worker int,
	rec InstanceRecorder) (*InstanceProfile, error) {
	n := slices.Count
	// One flat backing for the four per-slice output series. The views are
	// capacity-clipped so an accidental append cannot bleed into a neighbor.
	flat := make([]float64, 4*n)
	ip := &InstanceProfile{
		Instance:       ri,
		Consumption:    flat[0:n:n],
		KnownDemand:    flat[n : 2*n : 2*n],
		VariableWeight: flat[2*n : 3*n : 3*n],
		Unattributed:   flat[3*n : 4*n : 4*n],
		byPhase:        map[*core.Phase]*PhaseUsage{},
	}

	ar := acquireArena()
	defer ar.release()

	// Step 0: discover competitors and their per-slice activity; accumulate
	// the demand estimation matrix (§III-D1). Leaf-major — the order the
	// oracle uses — so every += lands in the same sequence.
	ratesLen := 0
	for _, leaf := range leaves {
		rule := ar.ruleFor(rules, leaf.Type, ri.Resource.Name)
		if rule.Kind == core.RuleNone {
			continue
		}
		if ri.Resource.PerMachine && leaf.Machine != ri.Machine {
			continue
		}
		first, last := slices.Range(leaf.Start, leaf.End)
		if first == last {
			continue
		}
		ci := int32(len(ar.compPhase))
		ar.compPhase = append(ar.compPhase, leaf)
		ar.compRule = append(ar.compRule, rule)
		ar.compFirst = append(ar.compFirst, int32(first))
		ar.compLast = append(ar.compLast, int32(last))
		ratesLen += last - first
		for k := first; k < last; k++ {
			t0, t1 := slices.Bounds(k)
			a := leaf.ActiveFraction(t0, t1)
			if a <= 0 {
				continue
			}
			switch rule.Kind {
			case core.RuleExact:
				ip.KnownDemand[k] += rule.Amount * a
			case core.RuleVariable:
				ip.VariableWeight[k] += rule.Amount * a
			}
			ar.entrySlice = append(ar.entrySlice, int32(k))
			ar.entryComp = append(ar.entryComp, ci)
			ar.entryAct = append(ar.entryAct, a)
			if rec != nil {
				rec.Demand(k, leaf, rule, a)
			}
		}
	}

	// Materialize the durable usage records: one PhaseUsage slab and one
	// flat rates backing shared by all competitors of this instance.
	nComp := len(ar.compPhase)
	var slab []PhaseUsage
	if nComp > 0 {
		slab = make([]PhaseUsage, nComp)
		ratesBacking := make([]float64, ratesLen)
		off := 0
		for ci := 0; ci < nComp; ci++ {
			span := int(ar.compLast[ci] - ar.compFirst[ci])
			slab[ci] = PhaseUsage{Phase: ar.compPhase[ci], First: int(ar.compFirst[ci]),
				Rates: ratesBacking[off : off+span : off+span]}
			off += span
		}
	}

	// Build the CSR activity index with a stable counting sort over the
	// discovery entries.
	nE := len(ar.entrySlice)
	ar.csrOff = growI32(ar.csrOff, n+1)
	for i := 0; i <= n; i++ {
		ar.csrOff[i] = 0
	}
	for _, k := range ar.entrySlice {
		ar.csrOff[k+1]++
	}
	for k := 0; k < n; k++ {
		ar.csrOff[k+1] += ar.csrOff[k]
	}
	ar.csrCur = growI32(ar.csrCur, n)
	copy(ar.csrCur, ar.csrOff[:n])
	ar.csrComp = growI32(ar.csrComp, nE)
	if cap(ar.csrAct) < nE {
		ar.csrAct = make([]float64, nE)
	} else {
		ar.csrAct = ar.csrAct[:nE]
	}
	for e := 0; e < nE; e++ {
		k := ar.entrySlice[e]
		p := ar.csrCur[k]
		ar.csrCur[k] = p + 1
		ar.csrComp[p] = ar.entryComp[e]
		ar.csrAct[p] = ar.entryAct[e]
	}

	// Step 1+2: upsample each monitoring measurement to slice granularity
	// (§III-D2).
	uspan := tracer.StartSpan("upsample", worker)
	if tracer.Enabled() {
		uspan.SetDetail(ri.Key())
		uspan.SetItems(int64(len(ri.Samples.Samples)))
	}
	if err := upsample(ip, ri, slices, ar, rec); err != nil {
		return nil, err
	}
	uspan.End()

	// Step 3: attribute per-slice consumption to phases (§III-D3).
	for k := 0; k < n; k++ {
		attributeSlice(ip, ar, slab, k, rec)
	}

	// Keep only phases that received any consumption.
	if nComp > 0 {
		ip.Usage = make([]*PhaseUsage, 0, nComp)
	}
	for ci := 0; ci < nComp; ci++ {
		u := &slab[ci]
		any := false
		for _, r := range u.Rates {
			if r > epsilon {
				any = true
				break
			}
		}
		if any {
			ip.Usage = append(ip.Usage, u)
			ip.byPhase[u.Phase] = u
		}
	}
	return ip, nil
}

// upsample distributes each coarse measurement over its timeslices in
// proportion to estimated demand, never exceeding the smaller of demand and
// capacity, with the excess over Exact demand load-balanced across Variable
// demand (§III-D2).
func upsample(ip *InstanceProfile, ri *core.ResourceInstance, slices core.Timeslices,
	ar *arena, rec InstanceRecorder) error {
	capUnit := ri.Resource.Capacity
	for _, smp := range ri.Samples.Samples {
		// Clip the measurement to the analyzed span; consumption outside it
		// is out of scope and must not be squeezed into in-span slices.
		w0 := vtime.Max(smp.Start, slices.Start)
		w1 := vtime.Min(smp.End, slices.End)
		if w1 <= w0 {
			continue
		}
		first, last := slices.Range(w0, w1)
		if first == last {
			continue
		}
		n := last - first
		// Per-slice working buffers: overlap durations with this measurement
		// window, capacity ceiling / Exact demand / variable weight (all in
		// unit·seconds), the allocation being built, and headroom scratch.
		dur, capAmt, knownAmt, varW, alloc, head := ar.upsampleViews(n)
		totalKnown := 0.0
		for i := 0; i < n; i++ {
			k := first + i
			t0, t1 := slices.Bounds(k)
			lo, hi := vtime.Max(t0, w0), vtime.Min(t1, w1)
			d := hi.Sub(lo).Seconds()
			if d <= 0 {
				continue
			}
			dur[i] = d
			capAmt[i] = capUnit * d
			knownAmt[i] = math.Min(ip.KnownDemand[k], capUnit) * d
			varW[i] = ip.VariableWeight[k] * d
			totalKnown += knownAmt[i]
		}
		consumption := smp.Avg * w1.Sub(w0).Seconds() // in-span unit·seconds
		if consumption <= epsilon {
			continue
		}

		// First satisfy Exact demand, proportionally when scarce.
		if consumption >= totalKnown {
			copy(alloc, knownAmt)
		} else if totalKnown > 0 {
			f := consumption / totalKnown
			for i := range alloc {
				alloc[i] = knownAmt[i] * f
			}
		}
		leftover := consumption
		for _, a := range alloc {
			leftover -= a
		}

		// Water-fill the remainder proportionally to Variable demand,
		// respecting per-slice capacity headroom.
		leftover = waterFill(alloc, leftover, varW, capAmt)
		// Model mismatch fallbacks, in decreasing order of plausibility:
		// excess consumption clings to the slices with Exact demand first
		// (consumption correlates with demand), then spreads over remaining
		// headroom, and as a last resort over window time, so mass is always
		// conserved.
		if leftover > epsilon {
			leftover = waterFill(alloc, leftover, knownAmt, capAmt)
		}
		if leftover > epsilon {
			for i := range head {
				head[i] = capAmt[i] - alloc[i]
			}
			leftover = waterFill(alloc, leftover, head, capAmt)
		}
		if leftover > epsilon {
			for i := range alloc {
				if dur[i] > 0 {
					alloc[i] += leftover * dur[i] / w1.Sub(w0).Seconds()
				}
			}
		}

		// Consumption[k] is the average rate over the whole slice, so a
		// measurement covering only part of a slice (misaligned windows)
		// contributes its allocation spread over the full slice width;
		// multiple windows touching the same slice then sum correctly.
		for i := 0; i < n; i++ {
			if dur[i] > 0 {
				ip.Consumption[first+i] += alloc[i] / slices.SliceSeconds(first+i)
				if rec != nil {
					rec.Upsample(first+i, w0, w1, smp.Avg, alloc[i])
				}
			}
		}
	}
	return nil
}

// waterFill distributes `amount` across alloc proportionally to weights,
// clipping each bucket at ceil, iterating until the amount is exhausted or
// no bucket can absorb more. It returns the undistributed remainder.
func waterFill(alloc []float64, amount float64, weights, ceil []float64) float64 {
	for amount > epsilon {
		totalW := 0.0
		for i := range weights {
			if weights[i] > 0 && ceil[i]-alloc[i] > epsilon {
				totalW += weights[i]
			}
		}
		if totalW == 0 {
			break
		}
		distributed := 0.0
		for i := range weights {
			if weights[i] <= 0 || ceil[i]-alloc[i] <= epsilon {
				continue
			}
			share := amount * weights[i] / totalW
			if head := ceil[i] - alloc[i]; share > head {
				share = head
			}
			alloc[i] += share
			distributed += share
		}
		if distributed <= epsilon {
			break
		}
		amount -= distributed
	}
	if amount < 0 {
		amount = 0
	}
	return amount
}

// attributeSlice splits slice k's upsampled consumption among the active
// phases: Exact phases proportionally up to their demand, remainder across
// Variable phases by weight (§III-D3). The active set is the CSR row
// [csrOff[k], csrOff[k+1]); entries are in leaf order, so both accumulation
// loops run in the oracle's sequence.
func attributeSlice(ip *InstanceProfile, ar *arena, slab []PhaseUsage, k int,
	rec InstanceRecorder) {
	u := ip.Consumption[k]
	lo, hi := ar.csrOff[k], ar.csrOff[k+1]
	if u <= epsilon || lo == hi {
		if u > epsilon {
			ip.Unattributed[k] = u
		}
		return
	}
	totalExact := 0.0
	totalVarW := 0.0
	for e := lo; e < hi; e++ {
		rule := &ar.compRule[ar.csrComp[e]]
		switch rule.Kind {
		case core.RuleExact:
			totalExact += rule.Amount * ar.csrAct[e]
		case core.RuleVariable:
			totalVarW += rule.Amount * ar.csrAct[e]
		}
	}
	exactScale := 1.0
	if u < totalExact && totalExact > 0 {
		exactScale = u / totalExact
	}
	givenExact := math.Min(u, totalExact)
	remainder := u - givenExact
	if rec != nil {
		rec.SliceSplit(k, u, totalExact, totalVarW, exactScale, remainder)
	}
	for e := lo; e < hi; e++ {
		ci := ar.csrComp[e]
		rule := &ar.compRule[ci]
		activity := ar.csrAct[e]
		var share float64
		switch rule.Kind {
		case core.RuleExact:
			share = rule.Amount * activity * exactScale
		case core.RuleVariable:
			if totalVarW > 0 {
				share = remainder * rule.Amount * activity / totalVarW
			}
		}
		if share > 0 {
			usage := &slab[ci]
			usage.Rates[k-usage.First] += share
		}
		if rec != nil {
			rec.Share(k, ar.compPhase[ci], *rule, activity, share)
		}
	}
	if totalVarW == 0 && remainder > epsilon {
		ip.Unattributed[k] = remainder
	}
}
