// Package reference preserves the row-based attribution implementation that
// predates the columnar rewrite of internal/attribution. It is the
// equivalence oracle: the columnar core must reproduce this implementation
// bit for bit — every output float64 and every provenance callback, in the
// same order — on any input. Equivalence tests diff the two; benchmarks use
// it as the speed baseline. It is deliberately serial and unpooled so the
// code stays a plain transcription of §III-D, easy to audit against the
// paper.
//
// Do not "improve" this package. Its value is that it does not change.
package reference

import (
	"math"

	"grade10/internal/attribution"
	"grade10/internal/core"
	"grade10/internal/vtime"
)

// epsilon mirrors attribution's floating-point residue threshold.
const epsilon = 1e-9

// PhaseUsage mirrors attribution.PhaseUsage.
type PhaseUsage struct {
	Phase *core.Phase
	First int
	Rates []float64
}

// InstanceProfile mirrors attribution.InstanceProfile.
type InstanceProfile struct {
	Instance       *core.ResourceInstance
	Consumption    []float64
	KnownDemand    []float64
	VariableWeight []float64
	Usage          []*PhaseUsage
	Unattributed   []float64
}

// Profile is the reference attribution output.
type Profile struct {
	Slices    core.Timeslices
	Instances []*InstanceProfile
}

// competitor is a leaf phase competing for a resource instance.
type competitor struct {
	phase *core.Phase
	rule  core.Rule
	usage *PhaseUsage
}

type competitorActivity struct {
	c        *competitor
	activity float64
}

// Attribute runs the row-based attribution process serially over every
// resource instance, in rt.Instances() order. A non-nil rec receives the
// same provenance callback stream the columnar implementation emits.
func Attribute(leaves []*core.Phase, rt *core.ResourceTrace, rules *core.RuleSet,
	slices core.Timeslices, rec attribution.Recorder) (*Profile, error) {
	prof := &Profile{Slices: slices}
	for i, ri := range rt.Instances() {
		var ir attribution.InstanceRecorder
		if rec != nil {
			ir = rec.InstanceRecorder(i, ri, slices)
		}
		ip, err := attributeInstance(ri, leaves, rules, slices, ir)
		if err != nil {
			return nil, err
		}
		prof.Instances = append(prof.Instances, ip)
	}
	return prof, nil
}

func attributeInstance(ri *core.ResourceInstance, leaves []*core.Phase,
	rules *core.RuleSet, slices core.Timeslices,
	rec attribution.InstanceRecorder) (*InstanceProfile, error) {
	ip := &InstanceProfile{
		Instance:       ri,
		Consumption:    make([]float64, slices.Count),
		KnownDemand:    make([]float64, slices.Count),
		VariableWeight: make([]float64, slices.Count),
		Unattributed:   make([]float64, slices.Count),
	}

	// Step 0: find competitors and their per-slice activity; accumulate the
	// demand estimation matrix (§III-D1).
	perSlice := make([][]competitorActivity, slices.Count)
	var competitors []*competitor
	for _, leaf := range leaves {
		rule := rules.Get(leaf.Type.Path(), ri.Resource.Name)
		if rule.Kind == core.RuleNone {
			continue
		}
		if ri.Resource.PerMachine && leaf.Machine != ri.Machine {
			continue
		}
		first, last := slices.Range(leaf.Start, leaf.End)
		if first == last {
			continue
		}
		c := &competitor{phase: leaf, rule: rule,
			usage: &PhaseUsage{Phase: leaf, First: first, Rates: make([]float64, last-first)}}
		competitors = append(competitors, c)
		for k := first; k < last; k++ {
			t0, t1 := slices.Bounds(k)
			a := leaf.ActiveFraction(t0, t1)
			if a <= 0 {
				continue
			}
			switch rule.Kind {
			case core.RuleExact:
				ip.KnownDemand[k] += rule.Amount * a
			case core.RuleVariable:
				ip.VariableWeight[k] += rule.Amount * a
			}
			perSlice[k] = append(perSlice[k], competitorActivity{c, a})
			if rec != nil {
				rec.Demand(k, leaf, rule, a)
			}
		}
	}

	// Step 1+2: upsample each monitoring measurement (§III-D2).
	if err := upsample(ip, ri, slices, rec); err != nil {
		return nil, err
	}

	// Step 3: attribute per-slice consumption to phases (§III-D3).
	for k := 0; k < slices.Count; k++ {
		attributeSlice(ip, perSlice[k], k, rec)
	}

	// Keep only phases that received any consumption.
	if len(competitors) > 0 {
		ip.Usage = make([]*PhaseUsage, 0, len(competitors))
	}
	for _, c := range competitors {
		any := false
		for _, r := range c.usage.Rates {
			if r > epsilon {
				any = true
				break
			}
		}
		if any {
			ip.Usage = append(ip.Usage, c.usage)
		}
	}
	return ip, nil
}

// upsample distributes each coarse measurement over its timeslices in
// proportion to estimated demand (§III-D2). Identical math to the columnar
// implementation; buffers are allocated fresh per measurement because this
// oracle optimizes for auditability, not speed.
func upsample(ip *InstanceProfile, ri *core.ResourceInstance, slices core.Timeslices,
	rec attribution.InstanceRecorder) error {
	capUnit := ri.Resource.Capacity
	for _, smp := range ri.Samples.Samples {
		w0 := vtime.Max(smp.Start, slices.Start)
		w1 := vtime.Min(smp.End, slices.End)
		if w1 <= w0 {
			continue
		}
		first, last := slices.Range(w0, w1)
		if first == last {
			continue
		}
		n := last - first
		dur := make([]float64, n)
		capAmt := make([]float64, n)
		knownAmt := make([]float64, n)
		varW := make([]float64, n)
		alloc := make([]float64, n)
		head := make([]float64, n)
		totalKnown := 0.0
		for i := 0; i < n; i++ {
			k := first + i
			t0, t1 := slices.Bounds(k)
			lo, hi := vtime.Max(t0, w0), vtime.Min(t1, w1)
			d := hi.Sub(lo).Seconds()
			if d <= 0 {
				continue
			}
			dur[i] = d
			capAmt[i] = capUnit * d
			knownAmt[i] = math.Min(ip.KnownDemand[k], capUnit) * d
			varW[i] = ip.VariableWeight[k] * d
			totalKnown += knownAmt[i]
		}
		consumption := smp.Avg * w1.Sub(w0).Seconds()
		if consumption <= epsilon {
			continue
		}

		if consumption >= totalKnown {
			copy(alloc, knownAmt)
		} else if totalKnown > 0 {
			f := consumption / totalKnown
			for i := range alloc {
				alloc[i] = knownAmt[i] * f
			}
		}
		leftover := consumption
		for _, a := range alloc {
			leftover -= a
		}

		leftover = waterFill(alloc, leftover, varW, capAmt)
		if leftover > epsilon {
			leftover = waterFill(alloc, leftover, knownAmt, capAmt)
		}
		if leftover > epsilon {
			for i := range head {
				head[i] = capAmt[i] - alloc[i]
			}
			leftover = waterFill(alloc, leftover, head, capAmt)
		}
		if leftover > epsilon {
			for i := range alloc {
				if dur[i] > 0 {
					alloc[i] += leftover * dur[i] / w1.Sub(w0).Seconds()
				}
			}
		}

		for i := 0; i < n; i++ {
			if dur[i] > 0 {
				ip.Consumption[first+i] += alloc[i] / slices.SliceSeconds(first+i)
				if rec != nil {
					rec.Upsample(first+i, w0, w1, smp.Avg, alloc[i])
				}
			}
		}
	}
	return nil
}

// waterFill is a verbatim copy of attribution's water-filling loop.
func waterFill(alloc []float64, amount float64, weights, ceil []float64) float64 {
	for amount > epsilon {
		totalW := 0.0
		for i := range weights {
			if weights[i] > 0 && ceil[i]-alloc[i] > epsilon {
				totalW += weights[i]
			}
		}
		if totalW == 0 {
			break
		}
		distributed := 0.0
		for i := range weights {
			if weights[i] <= 0 || ceil[i]-alloc[i] <= epsilon {
				continue
			}
			share := amount * weights[i] / totalW
			if head := ceil[i] - alloc[i]; share > head {
				share = head
			}
			alloc[i] += share
			distributed += share
		}
		if distributed <= epsilon {
			break
		}
		amount -= distributed
	}
	if amount < 0 {
		amount = 0
	}
	return amount
}

// attributeSlice splits the slice's upsampled consumption among the active
// phases (§III-D3).
func attributeSlice(ip *InstanceProfile, active []competitorActivity, k int,
	rec attribution.InstanceRecorder) {
	u := ip.Consumption[k]
	if u <= epsilon || len(active) == 0 {
		if u > epsilon {
			ip.Unattributed[k] = u
		}
		return
	}
	totalExact := 0.0
	totalVarW := 0.0
	for _, ca := range active {
		switch ca.c.rule.Kind {
		case core.RuleExact:
			totalExact += ca.c.rule.Amount * ca.activity
		case core.RuleVariable:
			totalVarW += ca.c.rule.Amount * ca.activity
		}
	}
	exactScale := 1.0
	if u < totalExact && totalExact > 0 {
		exactScale = u / totalExact
	}
	givenExact := math.Min(u, totalExact)
	remainder := u - givenExact
	if rec != nil {
		rec.SliceSplit(k, u, totalExact, totalVarW, exactScale, remainder)
	}
	for _, ca := range active {
		var share float64
		switch ca.c.rule.Kind {
		case core.RuleExact:
			share = ca.c.rule.Amount * ca.activity * exactScale
		case core.RuleVariable:
			if totalVarW > 0 {
				share = remainder * ca.c.rule.Amount * ca.activity / totalVarW
			}
		}
		if share > 0 {
			ca.c.usage.Rates[k-ca.c.usage.First] += share
		}
		if rec != nil {
			rec.Share(k, ca.c.phase, ca.c.rule, ca.activity, share)
		}
	}
	if totalVarW == 0 && remainder > epsilon {
		ip.Unattributed[k] = remainder
	}
}
