package reference_test

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"grade10/internal/attribution"
	"grade10/internal/attribution/reference"
	"grade10/internal/core"
	"grade10/internal/enginelog"
	"grade10/internal/metrics"
	"grade10/internal/vtime"
)

// The tests in this file are the equivalence contract of the columnar
// attribution core: on any input — misaligned monitoring windows, short
// final slices, per-machine resources, capacity saturation, model
// mismatch — attribution must reproduce the row-based reference oracle bit
// for bit, including the full provenance callback stream.

const sec = vtime.Second

func at(s int64) vtime.Time { return vtime.Time(s) * vtime.Time(sec) }

func ms(millis int64) vtime.Time { return vtime.Time(millis) * vtime.Time(vtime.Millisecond) }

// fixture is one generated attribution input.
type fixture struct {
	tr     *core.ExecutionTrace
	leaves []*core.Phase
	rt     *core.ResourceTrace
	rules  *core.RuleSet
	slices core.Timeslices
}

// provEvent is one recorded provenance callback, floats held as raw bits so
// comparison is exact.
type provEvent struct {
	kind   string
	k      int
	phase  *core.Phase
	rule   core.Rule
	t0, t1 vtime.Time
	bits   [5]uint64
}

type capSink struct{ evs []provEvent }

func f5(a, b, c, d, e float64) [5]uint64 {
	return [5]uint64{math.Float64bits(a), math.Float64bits(b), math.Float64bits(c),
		math.Float64bits(d), math.Float64bits(e)}
}

func (s *capSink) Demand(k int, phase *core.Phase, rule core.Rule, activity float64) {
	s.evs = append(s.evs, provEvent{kind: "demand", k: k, phase: phase, rule: rule,
		bits: f5(activity, 0, 0, 0, 0)})
}

func (s *capSink) Upsample(k int, mStart, mEnd vtime.Time, avg, alloc float64) {
	s.evs = append(s.evs, provEvent{kind: "upsample", k: k, t0: mStart, t1: mEnd,
		bits: f5(avg, alloc, 0, 0, 0)})
}

func (s *capSink) SliceSplit(k int, consumption, totalExact, totalVarW, exactScale, remainder float64) {
	s.evs = append(s.evs, provEvent{kind: "split", k: k,
		bits: f5(consumption, totalExact, totalVarW, exactScale, remainder)})
}

func (s *capSink) Share(k int, phase *core.Phase, rule core.Rule, activity, share float64) {
	s.evs = append(s.evs, provEvent{kind: "share", k: k, phase: phase, rule: rule,
		bits: f5(activity, share, 0, 0, 0)})
}

// capRecorder collects per-instance sinks by instance index. Safe under the
// parallel fan-out: each index is assigned exactly once.
type capRecorder struct{ sinks []*capSink }

func newCapRecorder(n int) *capRecorder { return &capRecorder{sinks: make([]*capSink, n)} }

func (r *capRecorder) InstanceRecorder(i int, ri *core.ResourceInstance,
	slices core.Timeslices) attribution.InstanceRecorder {
	s := &capSink{}
	r.sinks[i] = s
	return s
}

// buildFixture generates a randomized multi-resource, multi-machine input
// with misaligned monitoring windows and an odd slice width.
func buildFixture(t *testing.T, seed int64) *fixture {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	spanMs := int64(4000 + rng.Intn(8)*1500)
	span0, span1 := at(0), ms(spanMs)

	root := core.NewRootType("job")
	globals := []string{"a", "b", "c", "d"}
	for _, name := range globals {
		root.Child(name, false)
	}
	root.Child("w", true)
	model, err := core.NewExecutionModel(root)
	if err != nil {
		t.Fatal(err)
	}

	type phaseSpec struct {
		path    string
		machine int
		s, e    vtime.Time
	}
	var specs []phaseSpec
	for _, name := range globals[:1+rng.Intn(len(globals))] {
		s := rng.Int63n(spanMs - 500)
		e := s + 200 + rng.Int63n(spanMs-s-200)
		specs = append(specs, phaseSpec{"/job/" + name, -1, ms(s), ms(e)})
	}
	for m := 0; m < 2; m++ {
		s := rng.Int63n(spanMs - 500)
		e := s + 200 + rng.Int63n(spanMs-s-200)
		specs = append(specs, phaseSpec{fmt.Sprintf("/job/w.%d", m), m, ms(s), ms(e)})
	}

	// Emit starts and ends in time order (ends before starts on ties).
	type ev struct {
		t     vtime.Time
		start bool
		i     int
	}
	var evs []ev
	for i, sp := range specs {
		evs = append(evs, ev{sp.s, true, i}, ev{sp.e, false, i})
	}
	sort.SliceStable(evs, func(x, y int) bool {
		if evs[x].t != evs[y].t {
			return evs[x].t < evs[y].t
		}
		return !evs[x].start && evs[y].start
	})
	var now vtime.Time
	l := enginelog.NewLogger(func() vtime.Time { return now })
	now = span0
	l.StartPhase("/job", -1)
	for _, e := range evs {
		now = e.t
		if e.start {
			l.StartPhase(specs[e.i].path, specs[e.i].machine)
		} else {
			l.EndPhase(specs[e.i].path)
		}
	}
	now = span1
	l.EndPhase("/job")
	tr, err := core.BuildExecutionTrace(l.Log(), model)
	if err != nil {
		t.Fatal(err)
	}

	res := &core.Resource{Name: "res", Kind: core.Consumable, Capacity: 100}
	cpu := &core.Resource{Name: "cpu", Kind: core.Consumable, Capacity: 8, PerMachine: true}
	net := &core.Resource{Name: "net", Kind: core.Consumable, Capacity: 50}
	rt := core.NewResourceTrace()
	// Misaligned windows: boundaries land on multiples of 700 ms, never on
	// the 1.5 s slice grid; the last window runs past the span (clip path).
	sampleSeries := func(scale float64) *metrics.SampleSeries {
		ss := &metrics.SampleSeries{}
		for s := int64(0); s < spanMs; s += 700 {
			e := s + 700
			ss.Samples = append(ss.Samples, metrics.Sample{
				Start: ms(s), End: ms(e), Avg: rng.Float64() * scale,
			})
		}
		return ss
	}
	if err := rt.Add(res, core.GlobalMachine, sampleSeries(120)); err != nil {
		t.Fatal(err)
	}
	if err := rt.Add(net, core.GlobalMachine, sampleSeries(60)); err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 2; m++ {
		if err := rt.Add(cpu, m, sampleSeries(10)); err != nil {
			t.Fatal(err)
		}
	}

	rules := core.NewRuleSet()
	for _, name := range append(append([]string{}, globals...), "w") {
		for _, r := range []string{"res", "cpu", "net"} {
			switch rng.Intn(4) {
			case 0:
				rules.Set("/job/"+name, r, core.Exact(float64(1+rng.Intn(60))))
			case 1:
				rules.Set("/job/"+name, r, core.Variable(float64(1+rng.Intn(3))))
			case 2:
				rules.Set("/job/"+name, r, core.None())
			default:
				// Leave unset: the Variable(1) default applies.
			}
		}
	}

	width := []vtime.Duration{sec, 1500 * vtime.Millisecond, 700 * vtime.Millisecond}[rng.Intn(3)]
	slices := core.NewTimeslices(span0, span1, width)
	return &fixture{tr: tr, leaves: tr.Leaves(), rt: rt, rules: rules, slices: slices}
}

// diffProfiles asserts the columnar profile equals the reference profile bit
// for bit.
func diffProfiles(t *testing.T, got *attribution.Profile, want *reference.Profile) {
	t.Helper()
	if len(got.Instances) != len(want.Instances) {
		t.Fatalf("instance counts: %d vs %d", len(got.Instances), len(want.Instances))
	}
	eqBits := func(key, what string, xs, ys []float64) {
		if len(xs) != len(ys) {
			t.Fatalf("%s %s: lengths %d vs %d", key, what, len(xs), len(ys))
		}
		for k := range xs {
			if math.Float64bits(xs[k]) != math.Float64bits(ys[k]) {
				t.Fatalf("%s %s slice %d: %v (%#x) vs %v (%#x)", key, what, k,
					xs[k], math.Float64bits(xs[k]), ys[k], math.Float64bits(ys[k]))
			}
		}
	}
	for i := range got.Instances {
		g, w := got.Instances[i], want.Instances[i]
		key := g.Instance.Key()
		if g.Instance != w.Instance {
			t.Fatalf("instance %d: %q vs %q", i, key, w.Instance.Key())
		}
		eqBits(key, "consumption", g.Consumption, w.Consumption)
		eqBits(key, "known", g.KnownDemand, w.KnownDemand)
		eqBits(key, "varw", g.VariableWeight, w.VariableWeight)
		eqBits(key, "unattributed", g.Unattributed, w.Unattributed)
		if (g.Usage == nil) != (w.Usage == nil) || len(g.Usage) != len(w.Usage) {
			t.Fatalf("%s: usage %d (nil=%v) vs %d (nil=%v)", key,
				len(g.Usage), g.Usage == nil, len(w.Usage), w.Usage == nil)
		}
		for j := range g.Usage {
			gu, wu := g.Usage[j], w.Usage[j]
			if gu.Phase != wu.Phase || gu.First != wu.First {
				t.Fatalf("%s usage %d: phase %v first %d vs phase %v first %d",
					key, j, gu.Phase.Path, gu.First, wu.Phase.Path, wu.First)
			}
			eqBits(key, "rates "+gu.Phase.Path, gu.Rates, wu.Rates)
		}
	}
}

// diffProvenance asserts both recorders captured the identical callback
// stream for every instance.
func diffProvenance(t *testing.T, got, want *capRecorder) {
	t.Helper()
	if len(got.sinks) != len(want.sinks) {
		t.Fatalf("sink counts: %d vs %d", len(got.sinks), len(want.sinks))
	}
	for i := range got.sinks {
		g, w := got.sinks[i], want.sinks[i]
		if len(g.evs) != len(w.evs) {
			t.Fatalf("instance %d: %d provenance events vs %d", i, len(g.evs), len(w.evs))
		}
		for j := range g.evs {
			if g.evs[j] != w.evs[j] {
				t.Fatalf("instance %d event %d:\n got %+v\nwant %+v", i, j, g.evs[j], w.evs[j])
			}
		}
	}
}

// TestColumnarMatchesReference is the core equivalence sweep: randomized
// fixtures, every worker count, profile and provenance both bit-identical.
func TestColumnarMatchesReference(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		f := buildFixture(t, seed)
		nInst := len(f.rt.Instances())
		wantRec := newCapRecorder(nInst)
		want, err := reference.Attribute(f.leaves, f.rt, f.rules, f.slices, wantRec)
		if err != nil {
			t.Fatalf("seed %d: reference: %v", seed, err)
		}
		for _, workers := range []int{1, 4} {
			gotRec := newCapRecorder(nInst)
			got, err := attribution.AttributeWindowProv(f.tr, f.leaves, f.rt, f.rules,
				f.slices, workers, nil, gotRec)
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			diffProfiles(t, got, want)
			diffProvenance(t, gotRec, wantRec)
		}
	}
}

// TestColumnarMatchesReferenceEdges pins the degenerate shapes: no
// competitors at all, competitors that never earn consumption, saturation
// above capacity, and windows entirely outside the span.
func TestColumnarMatchesReferenceEdges(t *testing.T) {
	root := core.NewRootType("job")
	root.Child("a", false)
	model, err := core.NewExecutionModel(root)
	if err != nil {
		t.Fatal(err)
	}
	var now vtime.Time
	l := enginelog.NewLogger(func() vtime.Time { return now })
	now = at(2)
	l.StartPhase("/job", -1)
	l.StartPhase("/job/a", -1)
	now = at(5)
	l.EndPhase("/job/a")
	l.EndPhase("/job")
	tr, err := core.BuildExecutionTrace(l.Log(), model)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		rule    core.Rule
		samples []metrics.Sample
		cap     float64
	}{
		{"no-rule-unattributed", core.None(),
			[]metrics.Sample{{Start: at(2), End: at(5), Avg: 10}}, 100},
		{"zero-consumption", core.Variable(1),
			[]metrics.Sample{{Start: at(2), End: at(5), Avg: 0}}, 100},
		{"saturated", core.Exact(90),
			[]metrics.Sample{{Start: at(2), End: at(5), Avg: 95}}, 100},
		{"out-of-span-window", core.Variable(1),
			[]metrics.Sample{{Start: at(0), End: at(2), Avg: 50},
				{Start: at(2), End: at(5), Avg: 20}}, 100},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := &core.Resource{Name: "res", Kind: core.Consumable, Capacity: tc.cap}
			rt := core.NewResourceTrace()
			if err := rt.Add(res, core.GlobalMachine,
				&metrics.SampleSeries{Samples: tc.samples}); err != nil {
				t.Fatal(err)
			}
			rules := core.NewRuleSet()
			rules.Set("/job/a", "res", tc.rule)
			slices := core.NewTimeslices(at(2), at(5), 700*vtime.Millisecond)
			wantRec := newCapRecorder(1)
			want, err := reference.Attribute(tr.Leaves(), rt, rules, slices, wantRec)
			if err != nil {
				t.Fatal(err)
			}
			gotRec := newCapRecorder(1)
			got, err := attribution.AttributeWindowProv(tr, tr.Leaves(), rt, rules,
				slices, 1, nil, gotRec)
			if err != nil {
				t.Fatal(err)
			}
			diffProfiles(t, got, want)
			diffProvenance(t, gotRec, wantRec)
		})
	}
}

// TestColumnarNilRecorderMatches re-runs a fixture without any recorder:
// the nil-guarded path must produce the same bits as the recorded path.
func TestColumnarNilRecorderMatches(t *testing.T) {
	f := buildFixture(t, 99)
	want, err := reference.Attribute(f.leaves, f.rt, f.rules, f.slices, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := attribution.AttributeWindowProv(f.tr, f.leaves, f.rt, f.rules,
		f.slices, 2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	diffProfiles(t, got, want)
}
