package attribution

import (
	"testing"

	"grade10/internal/obs"
)

// TestAttributeTracedBitIdentical: enabling the self-tracer must not change
// the attribution result, and the tracer must see one span per instance job
// plus its inner upsampling step, each tagged with the attributed window.
func TestAttributeTracedBitIdentical(t *testing.T) {
	f := buildFig2(t)
	plain, err := AttributeN(f.tr, f.rt, f.rules, f.slices, 2)
	if err != nil {
		t.Fatal(err)
	}
	tracer := obs.NewTracer()
	traced, err := AttributeWindowTraced(f.tr, f.tr.Leaves(), f.rt, f.rules, f.slices, 2, tracer)
	if err != nil {
		t.Fatal(err)
	}
	equalProfiles(t, plain, traced)

	spans := tracer.Spans()
	byStage := map[string]int{}
	for _, s := range spans {
		byStage[s.Stage]++
		if s.Stage == "attribute-instance" {
			if !s.HasWindow || s.VStartNS != int64(f.slices.Start) || s.VEndNS != int64(f.slices.End) {
				t.Errorf("instance span missing window: %+v", s)
			}
			if s.Detail == "" {
				t.Errorf("instance span missing detail: %+v", s)
			}
		}
	}
	n := len(f.rt.Instances())
	if byStage["attribute-instance"] != n {
		t.Errorf("got %d attribute-instance spans, want %d", byStage["attribute-instance"], n)
	}
	if byStage["upsample"] != n {
		t.Errorf("got %d upsample spans, want %d", byStage["upsample"], n)
	}
}

// TestAttributionSpanCallsZeroAllocDisabled pins the zero-allocation contract
// of the disabled tracing path: the exact span call sequence the attribution
// fan-out executes per instance must not allocate when the tracer is nil.
func TestAttributionSpanCallsZeroAllocDisabled(t *testing.T) {
	f := buildFig2(t)
	ri := f.rt.Instances()[0]
	var tracer *obs.Tracer
	allocs := testing.AllocsPerRun(500, func() {
		span := tracer.StartSpan("attribute-instance", 0)
		if tracer.Enabled() {
			span.SetDetail(ri.Key())
			span.SetItems(int64(f.slices.Count))
			span.SetWindow(int64(f.slices.Start), int64(f.slices.End))
		}
		uspan := tracer.StartSpan("upsample", 0)
		if tracer.Enabled() {
			uspan.SetDetail(ri.Key())
			uspan.SetItems(int64(len(ri.Samples.Samples)))
		}
		uspan.End()
		span.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocated %v per instance job, want 0", allocs)
	}
}

// BenchmarkAttributeTracingDisabled / ...Enabled guard the hot-path cost of
// instrumentation: compare allocs/op of the two to see the tracing overhead
// (the disabled variant must match the pre-instrumentation baseline).
func BenchmarkAttributeTracingDisabled(b *testing.B) {
	f := buildFig2(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AttributeWindowTraced(f.tr, f.tr.Leaves(), f.rt, f.rules, f.slices, 1, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAttributeTracingEnabled(b *testing.B) {
	f := buildFig2(b)
	tracer := obs.NewTracer()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AttributeWindowTraced(f.tr, f.tr.Leaves(), f.rt, f.rules, f.slices, 1, tracer); err != nil {
			b.Fatal(err)
		}
	}
}
