// Dataflow demonstrates the paper's §V extension beyond graph processing:
// Grade10's models and pipeline applied to a Spark-like staged dataflow
// engine. A skewed shuffle concentrates one stage's rows onto a few
// partitions; Grade10's imbalance analysis prices the resulting stragglers.
//
//	go run ./examples/dataflow
package main

import (
	"fmt"
	"log"
	"os"

	"grade10/internal/cluster"
	"grade10/internal/dataflowsim"
	"grade10/internal/grade10"
	"grade10/internal/report"
	"grade10/internal/vtime"
)

func main() {
	job := dataflowsim.Job{
		Name:      "clickstream",
		InputRows: 400_000,
		Stages: []dataflowsim.StageSpec{
			// Parse: uniform map over the input.
			{Tasks: 32, CostPerRow: 2e-6, Selectivity: 1.0, ShuffleSkew: 1.1},
			// Aggregate by key: the skewed shuffle above concentrates hot
			// keys onto a few reducers.
			{Tasks: 32, CostPerRow: 5e-6, Selectivity: 0.2, ShuffleSkew: 0},
			// Report: small final stage.
			{Tasks: 8, CostPerRow: 1e-6, Selectivity: 0.05},
		},
	}
	cfg := dataflowsim.DefaultConfig()

	res, err := dataflowsim.Run(job, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job: %v, %.0f rows in, %.0f rows out\n",
		res.End.Sub(res.Start), res.RowsIn, res.RowsOut)

	models, err := dataflowsim.Model(grade10.ModelParams{
		Job: job.Name, Cores: cfg.Machine.Cores,
		NetBandwidth: cfg.Machine.NetBandwidth, ThreadsPerWorker: cfg.SlotsPerMachine,
	})
	if err != nil {
		log.Fatal(err)
	}
	monitoring, err := cluster.Monitor(res.Cluster, res.Start, res.End, 50*vtime.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	out, err := grade10.Characterize(grade10.Input{
		Log: res.Log, Monitoring: monitoring, Models: models,
		Timeslice: 10 * vtime.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := report.WriteAll(os.Stdout, out); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("The aggregate stage's task imbalance (hot keys on a few reducers) is")
	fmt.Println("the dominant issue — the same analysis that prices gather imbalance")
	fmt.Println("in the GAS engine, applied unchanged to a different domain.")
}
