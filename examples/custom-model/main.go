// Custom-model shows how to onboard a new framework onto Grade10: define an
// execution model and resource model for it, write (or parse) its logs,
// provide attribution rules, and characterize — the "expert input defined
// once, reused by many users" workflow of §III-B.
//
// The example invents a tiny two-stage dataflow engine ("mapshuffle") that
// is not one of the built-in simulators: its log is constructed by hand, its
// monitoring comes from a handwritten utilization series.
//
//	go run ./examples/custom-model
package main

import (
	"fmt"
	"log"
	"os"

	"grade10/internal/cluster"
	"grade10/internal/core"
	"grade10/internal/enginelog"
	"grade10/internal/grade10"
	"grade10/internal/metrics"
	"grade10/internal/report"
	"grade10/internal/vtime"
)

const sec = vtime.Second

func at(s float64) vtime.Time { return vtime.Time(vtime.FromSeconds(s)) }

func main() {
	// 1. Execution model: a job is map (2 parallel tasks per round, 2
	// sequential rounds) followed by shuffle, then reduce.
	root := core.NewRootType("mapshuffle")
	round := root.Child("round", true)
	round.Sequential = true
	round.Child("map", true) // parallel map tasks
	shuffle := round.Child("shuffle", false, "map")
	shuffle.SyncGroup = true
	root.Child("reduce", false, "round")
	exec, err := core.NewExecutionModel(root)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Resource model: one 4-core machine class plus a lock that
	// occasionally blocks map tasks.
	res, err := core.NewResourceModel(
		&core.Resource{Name: "cpu", Kind: core.Consumable, Capacity: 4, PerMachine: true},
		&core.Resource{Name: "statelock", Kind: core.Blocking},
	)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Attribution rules: a map task burns exactly one core; shuffle uses
	// whatever CPU it can get; reduce is CPU-variable too.
	rules := core.NewRuleSet()
	rules.Set("/mapshuffle/round/map", "cpu", core.Exact(1)).
		Set("/mapshuffle/round/shuffle", "cpu", core.Variable(0.5)).
		Set("/mapshuffle/reduce", "cpu", core.Variable(1))

	// 4. The execution log a real engine would emit (hand-written here).
	var now vtime.Time
	l := enginelog.NewLogger(func() vtime.Time { return now })
	emit := func(t0, t1 float64, path string, machine int) {
		now = at(t0)
		l.StartPhase(path, machine)
		now = at(t1)
		l.EndPhase(path)
	}
	now = at(0)
	l.StartPhase("/mapshuffle", -1)
	// Round 0: two imbalanced maps on machine 0, one blocked on the lock.
	now = at(0)
	l.StartPhase("/mapshuffle/round.0", -1)
	emit(0.0, 1.0, "/mapshuffle/round.0/map.0", 0)
	now = at(0)
	l.StartPhase("/mapshuffle/round.0/map.1", 0)
	now = at(1.2)
	l.BlockedSince("/mapshuffle/round.0/map.1", "statelock", at(0.4))
	now = at(2.0)
	l.EndPhase("/mapshuffle/round.0/map.1")
	emit(2.0, 2.5, "/mapshuffle/round.0/shuffle", 0)
	now = at(2.5)
	l.EndPhase("/mapshuffle/round.0")
	// Round 1: balanced maps.
	now = at(2.5)
	l.StartPhase("/mapshuffle/round.1", -1)
	emit(2.5, 3.5, "/mapshuffle/round.1/map.0", 0)
	emit(2.5, 3.4, "/mapshuffle/round.1/map.1", 0)
	emit(3.5, 3.9, "/mapshuffle/round.1/shuffle", 0)
	now = at(3.9)
	l.EndPhase("/mapshuffle/round.1")
	emit(3.9, 4.5, "/mapshuffle/reduce", 0)
	now = at(4.5)
	l.EndPhase("/mapshuffle")

	// 5. Monitoring: one coarse CPU sample per second for machine 0.
	truth := metrics.FromSteps(
		metrics.Point{T: at(0), V: 2},   // two maps
		metrics.Point{T: at(0.4), V: 1}, // one blocked
		metrics.Point{T: at(1.2), V: 2}, // unblocked, other map done → lock holder + shuffle? keep 2
		metrics.Point{T: at(2.0), V: 1.5},
		metrics.Point{T: at(2.5), V: 2},
		metrics.Point{T: at(3.5), V: 1},
		metrics.Point{T: at(4.5), V: 0},
	)
	monitoring := []cluster.ResourceSamples{{
		Machine: 0, Resource: "cpu", Capacity: 4,
		Samples: metrics.SampleSeriesOf(truth, at(0), at(4.5), vtime.Second),
	}}

	// 6. Characterize with 100 ms timeslices.
	out, err := grade10.Characterize(grade10.Input{
		Log:        l.Log(),
		Monitoring: monitoring,
		Models:     grade10.Models{Exec: exec, Res: res, Rules: rules},
		Timeslice:  100 * vtime.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := report.WriteAll(os.Stdout, out); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("Note how the 1-second monitoring was upsampled to 100 ms timeslices")
	fmt.Println("guided by the demand of the active phases, the statelock block shows")
	fmt.Println("up as a blocking bottleneck, and round 0's map imbalance is costed.")
}
