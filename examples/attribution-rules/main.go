// Attribution-rules reproduces the scenario of the paper's Figure 3: the
// same PageRank execution analyzed twice — once with no attribution rules
// (every phase defaults to Variable 1x, GC invisible) and once with the
// tuned Giraph model (each active compute thread demands exactly one core,
// GC pauses modeled as blocking events). The tuned model's demand estimate
// stays bounded by the thread count and Grade10 correctly concludes that
// unblocked compute threads are CPU-bound.
//
//	go run ./examples/attribution-rules
package main

import (
	"fmt"
	"log"
	"os"

	"grade10/internal/experiments"
)

func main() {
	r, err := experiments.Figure3()
	if err != nil {
		log.Fatal(err)
	}
	experiments.PrintFig3(os.Stdout, r)

	// Quantify the difference the rules make.
	maxDemand := func(pts []experiments.Fig3Point) float64 {
		m := 0.0
		for _, p := range pts {
			if p.Demand > m {
				m = p.Demand
			}
		}
		return m
	}
	count := func(pts []experiments.Fig3Point) int {
		n := 0
		for _, p := range pts {
			if p.Bottlenecked {
				n++
			}
		}
		return n
	}
	fmt.Println()
	fmt.Printf("peak demand estimate: untuned %.1f cores, tuned %.1f cores (machine has %g)\n",
		maxDemand(r.Untuned), maxDemand(r.Tuned), r.Cores)
	fmt.Printf("CPU-bottlenecked timeslices: untuned %d, tuned %d\n",
		count(r.Untuned), count(r.Tuned))
	fmt.Println()
	fmt.Println("Without rules Grade10 overestimates demand and rarely flags the compute")
	fmt.Println("threads as CPU-bound; with the tuned Exact(1 core) rule the demand never")
	fmt.Println("exceeds the thread count and every unblocked compute slice is correctly")
	fmt.Println("identified as CPU-bottlenecked — the paper's Figure 3 conclusion.")
}
