// Quickstart: simulate a PageRank job on the Giraph-like BSP engine,
// monitor it coarsely, run the full Grade10 characterization pipeline, and
// print the performance profile — the whole paper in about sixty lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"grade10/internal/cluster"
	"grade10/internal/giraphsim"
	"grade10/internal/grade10"
	"grade10/internal/graph"
	"grade10/internal/report"
	"grade10/internal/vertexprog"
	"grade10/internal/vtime"
)

func main() {
	// 1. A synthetic dataset: Graph500-style R-MAT with heavy-tailed degrees.
	g := graph.RMAT(11, 8, 42)
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	// 2. The system under test: a 2-worker BSP engine with a small heap so
	// garbage collection shows up in the profile.
	cfg := giraphsim.DefaultConfig()
	cfg.Workers = 2
	cfg.ThreadsPerWorker = 4
	cfg.HeapCapacity = 1 << 20
	part := graph.HashPartition(g, cfg.Workers)
	res, err := giraphsim.Run(vertexprog.NewPageRank(g, 0.85, 8), part, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run: makespan %v, %d supersteps, %d GC pauses, %d queue stalls\n",
		res.End.Sub(res.Start), res.Stats.Supersteps, res.Stats.GCCount, res.Stats.QueueStalls)

	// 3. Coarse monitoring (the paper's Ganglia-style samples): one average
	// per resource per 50 ms — 5× coarser than the 10 ms analysis timeslice.
	monitoring, err := cluster.Monitor(res.Cluster, res.Start, res.End, 50*vtime.Millisecond)
	if err != nil {
		log.Fatal(err)
	}

	// 4. The expert input: Giraph's execution model, resource model, and
	// attribution rules, defined once per framework.
	models, err := grade10.GiraphModel(grade10.ModelParams{
		Job:              "pagerank",
		Cores:            cfg.Machine.Cores,
		NetBandwidth:     cfg.Machine.NetBandwidth,
		ThreadsPerWorker: cfg.ThreadsPerWorker,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 5. Characterize: parse logs into an execution trace, upsample the
	// monitoring to timeslice granularity, attribute consumption to phases,
	// detect bottlenecks and performance issues.
	out, err := grade10.Characterize(grade10.Input{
		Log:        res.Log,
		Monitoring: monitoring,
		Models:     models,
		Timeslice:  10 * vtime.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	if err := report.WriteAll(os.Stdout, out); err != nil {
		log.Fatal(err)
	}
}
