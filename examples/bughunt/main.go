// Bughunt walks through §IV-D of the paper: finding a synchronization bug in
// the PowerGraph-like engine from Grade10's automated imbalance and
// straggler analysis, without ever looking at the engine's code.
//
// The engine carries an (optional) reproduction of the bug: occasionally one
// gather thread keeps processing a late message stream while its siblings
// idle at the barrier. We run the same CDLP job with the bug disabled and
// enabled, and show how Grade10's reports separate ordinary data-driven
// imbalance from the pathological stragglers.
//
//	go run ./examples/bughunt
package main

import (
	"fmt"
	"log"

	"grade10/internal/experiments"
	"grade10/internal/issues"
	"grade10/internal/vtime"
	"grade10/internal/workload"
)

func main() {
	spec := workload.Spec{Dataset: workload.Datasets()[1], Algorithm: "cdlp"}

	for _, buggy := range []bool{false, true} {
		label := "fixed engine"
		if buggy {
			label = "buggy engine"
		}
		fmt.Printf("==== %s ====\n", label)

		run, err := workload.RunPowerGraph(spec, experiments.PowerGraphConfig(2, buggy))
		if err != nil {
			log.Fatal(err)
		}
		out, err := run.Characterize(50*vtime.Millisecond, 10*vtime.Millisecond)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("makespan %v, %d injected stragglers\n",
			run.Result.End, run.Result.Stats.BugInjections)

		// Step 1 (§IV-D): the imbalance report points at gather phases.
		for _, is := range out.Issues.Issues {
			if is.Kind == issues.ImbalanceImpact {
				fmt.Printf("  %s\n", is.Describe())
			}
		}

		// Step 2: straggler detection localizes the threads to blame. In the
		// fixed engine the same analysis stays quiet — the residual spread is
		// ordinary degree skew, below the outlier threshold.
		outs := issues.DetectOutliers(out.Trace, issues.Config{
			OutlierFactor:           2.0,
			MinOutlierGroupDuration: 10 * vtime.Millisecond,
		})
		if len(outs) == 0 {
			fmt.Println("  no stragglers detected")
		}
		for _, o := range outs {
			fmt.Printf("  straggler %s: %.2fx its siblings, step slowed %.2fx\n",
				o.Phase.Path, o.Ratio, o.StepSlowdown)
		}
		fmt.Println()
	}

	fmt.Println("The stragglers appear only with the bug present, always in gather")
	fmt.Println("steps, one thread per affected worker — which is exactly the pattern")
	fmt.Println("that led the paper's authors to PowerGraph's cross-thread barrier bug.")
}
