package grade10_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIPipeline exercises the full file-based pipeline of the paper's
// Figure 1 through the real binaries: gengraph → runsim → grade10, plus the
// model dump/load round trip. It is the integration test for the cmd/ layer.
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	dir := t.TempDir()
	bin := func(name string) string { return filepath.Join(dir, name) }

	for _, tool := range []string{"gengraph", "runsim", "grade10", "infer"} {
		out, err := exec.Command("go", "build", "-o", bin(tool), "./cmd/"+tool).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, out)
		}
	}
	run := func(name string, args ...string) string {
		t.Helper()
		cmd := exec.Command(bin(name), args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", name, args, err, out)
		}
		return string(out)
	}

	graphFile := filepath.Join(dir, "g.el")
	out := run("gengraph", "-type", "rmat", "-scale", "10", "-edgefactor", "8",
		"-seed", "3", "-out", graphFile)
	if !strings.Contains(out, "vertices") {
		t.Fatalf("gengraph output: %s", out)
	}
	if _, err := os.Stat(graphFile); err != nil {
		t.Fatal(err)
	}

	runDir := filepath.Join(dir, "run")
	out = run("runsim", "-engine", "giraph", "-algorithm", "pagerank",
		"-graph", graphFile, "-workers", "2", "-threads", "4", "-out", runDir)
	if !strings.Contains(out, "makespan") {
		t.Fatalf("runsim output: %s", out)
	}
	for _, f := range []string{"run.json", "execution.log", "monitoring.csv"} {
		if _, err := os.Stat(filepath.Join(runDir, f)); err != nil {
			t.Fatalf("run dir missing %s: %v", f, err)
		}
	}

	modelsFile := filepath.Join(dir, "models.json")
	report := run("grade10", "-run", runDir, "-dump-models", modelsFile)
	for _, want := range []string{
		"execution span:", "PHASE TYPE", "bottlenecks",
		"performance issues", "replayed critical path",
	} {
		if !strings.Contains(report, want) {
			t.Fatalf("grade10 report missing %q:\n%s", want, report)
		}
	}
	if _, err := os.Stat(modelsFile); err != nil {
		t.Fatal(err)
	}

	// Re-analysis with the dumped models matches the built-in analysis
	// (ignoring stderr diagnostics like "grade10: wrote ..." and the
	// wall-clock decode-throughput footer line, which is host-dependent).
	stripDiag := func(s string) string {
		var keep []string
		for _, line := range strings.Split(s, "\n") {
			if strings.HasPrefix(line, "grade10: ") || strings.HasPrefix(line, "  decoded ") {
				continue
			}
			keep = append(keep, line)
		}
		return strings.Join(keep, "\n")
	}
	// stripFooter additionally drops the parse-stats footer, which names the
	// input format — the only line allowed to differ between a text and a
	// binary ingest of the same run.
	stripFooter := func(s string) string {
		var keep []string
		for _, line := range strings.Split(stripDiag(s), "\n") {
			if strings.HasPrefix(line, "log parse: ") {
				continue
			}
			keep = append(keep, line)
		}
		return strings.Join(keep, "\n")
	}
	report2 := run("grade10", "-run", runDir, "-models", modelsFile)
	if stripDiag(report2) != stripDiag(report) {
		t.Fatal("analysis with dumped models differs from built-ins")
	}

	// Serial and parallel analysis produce byte-identical reports: the
	// worker-pool fan-out merges in deterministic order.
	serialRep := run("grade10", "-run", runDir, "-parallelism", "1")
	parallelRep := run("grade10", "-run", runDir, "-parallelism", "8")
	if stripDiag(serialRep) != stripDiag(parallelRep) {
		t.Fatal("-parallelism 8 report differs from -parallelism 1")
	}
	if stripDiag(serialRep) != stripDiag(report) {
		t.Fatal("-parallelism 1 report differs from the default analysis")
	}

	// Untuned analysis differs (fewer blocking events, no Exact rules).
	untuned := run("grade10", "-run", runDir, "-untuned")
	if untuned == report {
		t.Fatal("untuned analysis identical to tuned")
	}

	// Binary enginelog: converting the run directory, analyzing the binary
	// copy, and converting back must (a) produce the identical report modulo
	// the input-format footer and (b) reproduce the original text log byte
	// for byte.
	binDir := filepath.Join(dir, "run-bin")
	run("grade10", "-convert", runDir, "-o", binDir)
	rawBin, err := os.ReadFile(filepath.Join(binDir, "execution.log"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(rawBin), "G10B") {
		t.Fatalf("converted execution.log lacks binary magic: %.8q", rawBin)
	}
	binRep := run("grade10", "-run", binDir)
	if !strings.Contains(binRep, "log parse: binary format") {
		t.Fatalf("binary run footer missing format:\n%s", binRep)
	}
	if !strings.Contains(report, "log parse: text format") {
		t.Fatalf("text run footer missing format:\n%s", report)
	}
	if stripFooter(binRep) != stripFooter(report) {
		t.Fatal("binary-ingested report differs from text-ingested report")
	}
	backDir := filepath.Join(dir, "run-back")
	run("grade10", "-convert", binDir, "-o", backDir)
	origLog, err := os.ReadFile(filepath.Join(runDir, "execution.log"))
	if err != nil {
		t.Fatal(err)
	}
	backLog, err := os.ReadFile(filepath.Join(backDir, "execution.log"))
	if err != nil {
		t.Fatal(err)
	}
	if string(origLog) != string(backLog) {
		t.Fatal("text → binary → text round trip not byte-identical")
	}

	// runsim -binary-log writes the binary format directly; the deterministic
	// simulation reproduces the same run, so the report matches too.
	blDir := filepath.Join(dir, "run-binarylog")
	run("runsim", "-engine", "giraph", "-algorithm", "pagerank",
		"-graph", graphFile, "-workers", "2", "-threads", "4", "-binary-log", "-out", blDir)
	rawBL, err := os.ReadFile(filepath.Join(blDir, "execution.log"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(rawBL), "G10B") {
		t.Fatal("runsim -binary-log did not write binary execution.log")
	}
	if stripFooter(run("grade10", "-run", blDir)) != stripFooter(report) {
		t.Fatal("-binary-log run report differs from text run report")
	}

	// Rule inference produces a models file the analyzer accepts.
	inferredFile := filepath.Join(dir, "inferred.json")
	fitOut := run("infer", "-run", runDir, "-out", inferredFile)
	if !strings.Contains(fitOut, "INFERRED DEMAND") {
		t.Fatalf("infer output: %s", fitOut)
	}
	run("grade10", "-run", runDir, "-models", inferredFile)

	// PowerGraph path and CSV export work too.
	pgDir := filepath.Join(dir, "pgrun")
	run("runsim", "-engine", "powergraph", "-algorithm", "cdlp",
		"-dataset", "datagen", "-workers", "2", "-threads", "4", "-bug", "-out", pgDir)
	csvFile := filepath.Join(dir, "consumption.csv")
	run("grade10", "-run", pgDir, "-csv", csvFile)
	data, err := os.ReadFile(csvFile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "slice,start_ns,") {
		t.Fatalf("csv header: %.60s", data)
	}

	// Archive + diff: run the same compute-heavy workload twice — once at the
	// engine's default background noise, once with heavy injected CPU noise
	// (cluster.Noise via -noise) — archive both analyses, and the diff must
	// flag the regression and localize it to the compute leaf × cpu. The
	// built-in rmat dataset with default threads keeps compute a large enough
	// share of the makespan that CPU contention moves the verdict.
	diffBaseDir := filepath.Join(dir, "run-diffbase")
	run("runsim", "-engine", "giraph", "-algorithm", "pagerank",
		"-workers", "2", "-out", diffBaseDir)
	noisyDir := filepath.Join(dir, "run-noisy")
	run("runsim", "-engine", "giraph", "-algorithm", "pagerank",
		"-workers", "2", "-noise", "7.5", "-out", noisyDir)
	storeDir := filepath.Join(dir, "profiles")
	archOut := run("grade10", "-run", diffBaseDir, "-store", storeDir, "-run-label", "baseline")
	if !strings.Contains(archOut, "archived run ") {
		t.Fatalf("no archive confirmation:\n%s", archOut)
	}
	run("grade10", "-run", noisyDir, "-store", storeDir, "-run-label", "noisy")

	idOf := func(out string) string {
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, "archived run ") {
				return strings.Fields(line)[2]
			}
		}
		t.Fatalf("no archived run line in:\n%s", out)
		return ""
	}
	baseID := idOf(archOut)
	// Re-archiving the same run is idempotent: same content ID, no new entry.
	noisyID := idOf(run("grade10", "-run", noisyDir, "-store", storeDir, "-run-label", "noisy"))

	deltaFile := filepath.Join(dir, "delta.json")
	diffText := run("grade10", "-store", storeDir, "-diff-out", deltaFile,
		"-diff", baseID, noisyID)
	for _, want := range []string{
		"verdict: REGRESSED",
		"top regression: ", "/compute/thread × cpu",
	} {
		if !strings.Contains(diffText, want) {
			t.Fatalf("diff text missing %q:\n%s", want, diffText)
		}
	}
	delta, err := os.ReadFile(deltaFile)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`"verdict": "regressed"`, `"resource": "cpu"`, "/compute/thread",
	} {
		if !strings.Contains(string(delta), want) {
			t.Fatalf("delta JSON missing %q", want)
		}
	}

	// Diff output is byte-identical regardless of prefix resolution, and
	// -fail-on-regress flips the exit status to 3.
	diffText2 := run("grade10", "-store", storeDir, "-diff", baseID[:6], noisyID[:6])
	if stripDiag(diffText2) != stripDiag(diffText) {
		t.Fatal("diff by prefix differs from diff by full ID")
	}
	cmd := exec.Command(bin("grade10"), "-store", storeDir, "-fail-on-regress",
		"-diff", baseID, noisyID)
	if err := cmd.Run(); err == nil {
		t.Fatal("-fail-on-regress exited 0 on a regression")
	} else if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 3 {
		t.Fatalf("-fail-on-regress exit: %v, want status 3", err)
	}
}
