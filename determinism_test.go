package grade10_test

import (
	"bytes"
	"testing"

	"grade10/internal/cluster"
	"grade10/internal/explain"
	"grade10/internal/giraphsim"
	"grade10/internal/grade10"
	"grade10/internal/graph"
	"grade10/internal/profdiff"
	"grade10/internal/profstore"
	"grade10/internal/report"
	"grade10/internal/rundir"
	"grade10/internal/vtime"
	"grade10/internal/workload"
)

// TestPipelineParallelReportBitIdentical is the end-to-end determinism guard
// for PR 2's parallelization: the complete rendered report — attribution,
// bottlenecks, issue detection, critical path — must be byte-identical
// whether the analysis pipeline runs serially or fanned out across workers.
func TestPipelineParallelReportBitIdentical(t *testing.T) {
	cfg := giraphsim.DefaultConfig()
	cfg.Workers = 4
	run, err := workload.RunGiraph(workload.Spec{
		Dataset:   workload.Dataset{Name: "det", Gen: func() *graph.Graph { return graph.RMAT(10, 8, 42) }},
		Algorithm: "pagerank"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := cluster.Monitor(run.Result.Cluster, run.Result.Start, run.Result.End,
		50*vtime.Millisecond)
	if err != nil {
		t.Fatal(err)
	}

	render := func(parallelism int) []byte {
		t.Helper()
		out, err := grade10.Characterize(grade10.Input{
			Log:         run.Result.Log,
			Monitoring:  mon,
			Models:      run.Models,
			Parallelism: parallelism,
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := report.WriteAll(&buf, out); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	serial := render(1)
	if len(serial) == 0 {
		t.Fatal("empty serial report")
	}
	for _, workers := range []int{0, 2, 8} {
		if par := render(workers); !bytes.Equal(serial, par) {
			t.Fatalf("parallelism %d: report differs from serial run", workers)
		}
	}
}

// TestExplainParallelBitIdentical extends the guard to the provenance layer:
// the explain engine's derivation chains (text and JSON) must be
// byte-identical whatever parallelism the attribution fan-out ran at — the
// per-instance provenance shards are appended serially by each instance's
// job and merged in instance order, so worker count must never reorder or
// reshape the evidence.
func TestExplainParallelBitIdentical(t *testing.T) {
	cfg := giraphsim.DefaultConfig()
	cfg.Workers = 4
	run, err := workload.RunGiraph(workload.Spec{
		Dataset:   workload.Dataset{Name: "det", Gen: func() *graph.Graph { return graph.RMAT(10, 8, 42) }},
		Algorithm: "pagerank"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := cluster.Monitor(run.Result.Cluster, run.Result.Start, run.Result.End,
		50*vtime.Millisecond)
	if err != nil {
		t.Fatal(err)
	}

	queries := []string{
		"phase=/pagerank/execute/superstep/worker/compute/thread resource=cpu",
		"resource=cpu machine=0",
		"phase=/pagerank/execute/superstep/worker/compute/thread",
	}
	render := func(parallelism int) []byte {
		t.Helper()
		rec := explain.NewRecorder(0)
		out, err := grade10.Characterize(grade10.Input{
			Log:         run.Result.Log,
			Monitoring:  mon,
			Models:      run.Models,
			Parallelism: parallelism,
			Recorder:    rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		ex := explain.NewExplainer(out.Profile, rec)
		var buf bytes.Buffer
		for _, qs := range queries {
			q, err := explain.ParseQuery(qs)
			if err != nil {
				t.Fatal(err)
			}
			d, err := ex.Explain(q)
			if err != nil {
				t.Fatalf("query %q: %v", qs, err)
			}
			if err := d.WriteText(&buf); err != nil {
				t.Fatal(err)
			}
			if err := d.WriteJSON(&buf); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Bytes()
	}

	serial := render(1)
	if len(serial) == 0 {
		t.Fatal("empty serial derivation")
	}
	for _, workers := range []int{0, 2, 8} {
		if par := render(workers); !bytes.Equal(serial, par) {
			t.Fatalf("parallelism %d: explain output differs from serial run", workers)
		}
	}
}

// TestDiffParallelBitIdentical extends the guard to the cross-run layer:
// archived records and both diff renderings (text and JSON) must be
// byte-identical whatever parallelism the analyses ran at — archives built
// on different hosts or settings would otherwise never be comparable.
func TestDiffParallelBitIdentical(t *testing.T) {
	cfg := giraphsim.DefaultConfig()
	cfg.Workers = 2
	baseRun, err := workload.RunGiraph(workload.Spec{
		Dataset:   workload.Dataset{Name: "det", Gen: func() *graph.Graph { return graph.RMAT(10, 8, 42) }},
		Algorithm: "pagerank"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	noisyCfg := cfg
	noisyCfg.OSNoiseCores = 6
	noisyRun, err := workload.RunGiraph(workload.Spec{
		Dataset:   workload.Dataset{Name: "det", Gen: func() *graph.Graph { return graph.RMAT(10, 8, 42) }},
		Algorithm: "pagerank"}, noisyCfg)
	if err != nil {
		t.Fatal(err)
	}

	record := func(run *workload.GiraphRun, c giraphsim.Config, parallelism int) *profstore.Record {
		t.Helper()
		mon, err := cluster.Monitor(run.Result.Cluster, run.Result.Start, run.Result.End,
			50*vtime.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		out, err := grade10.Characterize(grade10.Input{
			Log: run.Result.Log, Monitoring: mon, Models: run.Models,
			Parallelism: parallelism,
		})
		if err != nil {
			t.Fatal(err)
		}
		return profstore.BuildRecord(rundir.Info{
			Engine: "giraph", Job: "pagerank", Workers: c.Workers,
			ThreadsPerWorker: c.ThreadsPerWorker, Cores: c.Machine.Cores,
			NetBandwidth: c.Machine.NetBandwidth, DiskBandwidth: c.Machine.DiskBandwidth,
			StartNS: int64(run.Result.Start), EndNS: int64(run.Result.End),
		}, out)
	}

	renderDiff := func(parallelism int) (string, []byte, []byte) {
		t.Helper()
		a := record(baseRun, cfg, parallelism)
		b := record(noisyRun, noisyCfg, parallelism)
		rep, err := profdiff.Diff(a, b, profdiff.Config{})
		if err != nil {
			t.Fatal(err)
		}
		var text, js bytes.Buffer
		if err := profdiff.WriteText(&text, rep); err != nil {
			t.Fatal(err)
		}
		if err := profdiff.WriteJSON(&js, rep); err != nil {
			t.Fatal(err)
		}
		return profstore.ContentID(a) + "/" + profstore.ContentID(b), text.Bytes(), js.Bytes()
	}

	ids1, text1, js1 := renderDiff(1)
	if len(text1) == 0 || len(js1) == 0 {
		t.Fatal("empty diff render")
	}
	for _, workers := range []int{0, 2, 8} {
		ids, text, js := renderDiff(workers)
		if ids != ids1 {
			t.Fatalf("parallelism %d: content IDs changed: %s vs %s", workers, ids, ids1)
		}
		if !bytes.Equal(text, text1) {
			t.Fatalf("parallelism %d: diff text differs from serial run", workers)
		}
		if !bytes.Equal(js, js1) {
			t.Fatalf("parallelism %d: diff JSON differs from serial run", workers)
		}
	}
}
