package grade10_test

import (
	"bytes"
	"testing"

	"grade10/internal/cluster"
	"grade10/internal/giraphsim"
	"grade10/internal/grade10"
	"grade10/internal/graph"
	"grade10/internal/report"
	"grade10/internal/vtime"
	"grade10/internal/workload"
)

// TestPipelineParallelReportBitIdentical is the end-to-end determinism guard
// for PR 2's parallelization: the complete rendered report — attribution,
// bottlenecks, issue detection, critical path — must be byte-identical
// whether the analysis pipeline runs serially or fanned out across workers.
func TestPipelineParallelReportBitIdentical(t *testing.T) {
	cfg := giraphsim.DefaultConfig()
	cfg.Workers = 4
	run, err := workload.RunGiraph(workload.Spec{
		Dataset:   workload.Dataset{Name: "det", Gen: func() *graph.Graph { return graph.RMAT(10, 8, 42) }},
		Algorithm: "pagerank"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := cluster.Monitor(run.Result.Cluster, run.Result.Start, run.Result.End,
		50*vtime.Millisecond)
	if err != nil {
		t.Fatal(err)
	}

	render := func(parallelism int) []byte {
		t.Helper()
		out, err := grade10.Characterize(grade10.Input{
			Log:         run.Result.Log,
			Monitoring:  mon,
			Models:      run.Models,
			Parallelism: parallelism,
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := report.WriteAll(&buf, out); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	serial := render(1)
	if len(serial) == 0 {
		t.Fatal("empty serial report")
	}
	for _, workers := range []int{0, 2, 8} {
		if par := render(workers); !bytes.Equal(serial, par) {
			t.Fatalf("parallelism %d: report differs from serial run", workers)
		}
	}
}
