// Package grade10 is a Go reproduction of "Grade10: A Framework for
// Performance Characterization of Distributed Graph Processing" (Hegeman,
// Trivedi, Iosup — IEEE CLUSTER 2020).
//
// The repository contains the Grade10 analyzer itself (execution/resource
// models, timeslice-granular resource attribution with upsampling,
// bottleneck identification, performance-issue detection) and the full
// substrate its evaluation needs: a deterministic discrete-event cluster
// simulator, a Giraph-like BSP engine, a PowerGraph-like GAS engine,
// synthetic Graphalytics-style datasets, and the reference algorithms.
//
// See README.md for an overview, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for paper-vs-measured results. The
// benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation section.
package grade10
