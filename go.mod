module grade10

go 1.22
