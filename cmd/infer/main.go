// Command infer fits attribution-rule coefficients from a run directory —
// the paper's §V future work of reducing expert input. For each consumable
// resource it prints the fitted per-instance demand of every leaf phase type
// and, optionally, writes a complete models JSON whose rules come from the
// fit instead of an expert.
//
// Usage:
//
//	infer -run run/
//	infer -run run/ -out inferred-models.json
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"text/tabwriter"

	"grade10/internal/core"
	"grade10/internal/grade10"
	"grade10/internal/infer"
	"grade10/internal/metrics"
	"grade10/internal/obs"
	"grade10/internal/rundir"
	"grade10/internal/vtime"
)

var logger *slog.Logger

func main() {
	var (
		runDir    = flag.String("run", "", "run directory from cmd/runsim (required)")
		timeslice = flag.Duration("timeslice", 0, "fitting granularity (default: the monitoring interval)")
		out       = flag.String("out", "", "write models JSON with the inferred rules to this file")
		logFormat = flag.String("log-format", "text", "diagnostic log format: text or json")
		logLevel  = flag.String("log-level", "info", "diagnostic log level: debug, info, warn, or error")
	)
	flag.Parse()
	var err error
	logger, err = obs.NewLogger(os.Stderr, "infer", *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "infer: %v\n", err)
		os.Exit(2)
	}
	if *runDir == "" {
		logger.Error("-run is required")
		os.Exit(2)
	}

	run, err := rundir.Load(*runDir)
	if err != nil {
		fail(err)
	}
	models, err := builtinModels(run)
	if err != nil {
		fail(err)
	}
	tr, err := core.BuildExecutionTrace(run.Log, models.Exec)
	if err != nil {
		fail(err)
	}

	// Group the monitoring by resource.
	byResource := map[string]map[int]*metrics.SampleSeries{}
	intervals := map[string]vtime.Duration{}
	for _, rs := range run.Monitoring {
		res := models.Res.Lookup(rs.Resource)
		if res == nil || res.Kind != core.Consumable {
			continue
		}
		m, ok := byResource[rs.Resource]
		if !ok {
			m = map[int]*metrics.SampleSeries{}
			byResource[rs.Resource] = m
		}
		machine := rs.Machine
		if !res.PerMachine {
			machine = core.GlobalMachine
		}
		m[machine] = rs.Samples
		if len(rs.Samples.Samples) > 0 {
			intervals[rs.Resource] = rs.Samples.Samples[0].Duration()
		}
	}

	inferredRules := core.NewRuleSet()
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "RESOURCE\tPHASE TYPE\tINFERRED DEMAND")
	for _, res := range models.Res.Consumables() {
		monitoring, ok := byResource[res.Name]
		if !ok {
			continue
		}
		opts := infer.Options{Timeslice: intervals[res.Name]}
		if *timeslice > 0 {
			opts.Timeslice = vtime.Duration(*timeslice)
		}
		result, err := infer.InferRules(tr, res.Name, monitoring, opts)
		if err != nil {
			fail(fmt.Errorf("fitting %s: %w", res.Name, err))
		}
		fitted := result.RuleSet(opts)
		for _, c := range result.Coefficients {
			fmt.Fprintf(tw, "%s\t%s\t%.4g\n", res.Name, c.TypePath, c.Amount)
			inferredRules.Set(c.TypePath, res.Name, fitted.Get(c.TypePath, res.Name))
		}
	}
	tw.Flush()

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		models.Rules = inferredRules
		if err := grade10.SaveModels(f, models); err != nil {
			fail(err)
		}
		logger.Info(fmt.Sprintf("wrote %s (analyze with: grade10 -run %s -models %s)",
			*out, *runDir, *out))
	}
}

// builtinModels resolves the framework model named in the run metadata; the
// execution model is needed to parse the log, while the expert rules are
// replaced by the fit.
func builtinModels(run *rundir.Run) (grade10.Models, error) {
	params := grade10.ModelParams{
		Job:              run.Info.Job,
		Cores:            run.Info.Cores,
		NetBandwidth:     run.Info.NetBandwidth,
		DiskBandwidth:    run.Info.DiskBandwidth,
		ThreadsPerWorker: run.Info.ThreadsPerWorker,
	}
	switch run.Info.Engine {
	case "giraph":
		return grade10.GiraphModel(params)
	case "powergraph":
		return grade10.PowerGraphModel(params)
	default:
		return grade10.Models{}, fmt.Errorf("unknown engine %q", run.Info.Engine)
	}
}

func fail(err error) {
	logger.Error(err.Error())
	os.Exit(1)
}
