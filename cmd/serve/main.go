// Command serve is the live characterization service: it tails a run
// directory while cmd/runsim (or any engine) is still writing it, feeds the
// execution log and monitoring through the streaming engine, and serves the
// evolving performance profile over HTTP — JSON endpoints for dashboards,
// Prometheus text metrics for scraping, and, once the run completes, the
// exact final report (byte-identical to cmd/grade10 on the same directory).
//
// Usage:
//
//	serve -run run/ -addr :7070
//	curl localhost:7070/profile      # live profile (JSON)
//	curl localhost:7070/metrics      # Prometheus text format
//	curl localhost:7070/report       # final report (503 until the run ends)
//
// The service is robust to producers in progress: files that do not exist
// yet, partially written lines, and garbled log content are handled by
// waiting, buffering, and counting respectively.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"grade10/internal/grade10"
	"grade10/internal/rundir"
	"grade10/internal/stream"
	"grade10/internal/vtime"
)

func main() {
	var (
		runDir    = flag.String("run", "", "run directory to tail (required)")
		addr      = flag.String("addr", ":7070", "HTTP listen address")
		poll      = flag.Duration("poll", 100*time.Millisecond, "file polling interval")
		idle      = flag.Duration("idle", time.Second, "idle time after which the run counts as complete")
		timeslice = flag.Duration("timeslice", 0, "analysis timeslice (virtual; default 10ms)")
		window    = flag.Int("window", 64, "timeslices per live analysis window")
		maxWin    = flag.Int("max-windows", 32, "recent windows retained for /windows")
		bounded   = flag.Bool("bounded", false, "strictly bounded memory: drop raw inputs, /report serves no exact text")
		parallel  = flag.Int("parallelism", 0, "analysis worker count (0 = GOMAXPROCS); results are identical for every value")
		pprofOn   = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	)
	flag.Parse()
	if *runDir == "" {
		fmt.Fprintln(os.Stderr, "serve: -run is required")
		os.Exit(2)
	}

	// The handler swaps from "warming up" to the live server once run.json
	// reveals which engine's models to build. atomic.Pointer keeps the swap
	// type-safe across the two concrete handler types.
	var handler atomic.Pointer[http.Handler]
	warming := http.Handler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			fmt.Fprintln(w, "ok")
			return
		}
		http.Error(w, "waiting for run metadata (run.json)", http.StatusServiceUnavailable)
	}))
	handler.Store(&warming)
	httpSrv := &http.Server{Addr: *addr, Handler: http.HandlerFunc(
		func(w http.ResponseWriter, r *http.Request) {
			(*handler.Load()).ServeHTTP(w, r)
		})}
	go func() {
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			fail(err)
		}
	}()
	fmt.Fprintf(os.Stderr, "serve: listening on %s, tailing %s\n", *addr, *runDir)

	stop := make(chan struct{})
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigCh
		close(stop)
	}()

	// Until the engine exists, log lines and monitoring rows buffer; run.json
	// may legitimately appear after data starts landing.
	var (
		engine       *stream.Engine
		pendingLines []string
		pendingRows  []rundir.MonitoringRow
	)
	sink := rundir.FollowSink{
		Info: func(info rundir.Info) {
			e, err := buildEngine(info, *timeslice, *window, *maxWin, *bounded, *parallel)
			if err != nil {
				fail(err)
			}
			engine = e
			for _, line := range pendingLines {
				engine.IngestLine(line)
			}
			for _, row := range pendingRows {
				engine.IngestRow(row)
			}
			pendingLines, pendingRows = nil, nil
			srv := stream.NewServer(engine)
			if *pprofOn {
				srv.EnablePprof()
			}
			live := http.Handler(srv)
			handler.Store(&live)
			fmt.Fprintf(os.Stderr, "serve: %s run of %q on %d workers; live endpoints up\n",
				info.Engine, info.Job, info.Workers)
		},
		LogLine: func(line string) {
			if engine != nil {
				engine.IngestLine(line)
			} else {
				pendingLines = append(pendingLines, line)
			}
		},
		MonitoringRow: func(row rundir.MonitoringRow) {
			if engine != nil {
				engine.IngestRow(row)
			} else {
				pendingRows = append(pendingRows, row)
			}
		},
	}
	if err := rundir.Follow(*runDir, rundir.FollowOptions{Poll: *poll, Idle: *idle}, stop, sink); err != nil {
		fail(err)
	}
	if engine == nil {
		fail(fmt.Errorf("stopped before %s appeared in %s", "run.json", *runDir))
	}

	out, err := engine.Finalize()
	if err != nil {
		fail(err)
	}
	st := engine.Stats()
	fmt.Fprintf(os.Stderr,
		"serve: run complete: %d events (%d skipped lines), %d samples, %d windows\n",
		st.Events, st.ParseErrors, st.Samples, st.WindowsFlushed)
	if out != nil {
		fmt.Fprintf(os.Stderr, "serve: exact report ready at /report\n")
	} else {
		fmt.Fprintf(os.Stderr, "serve: bounded mode: live profile at /profile, no exact /report\n")
	}

	<-stop
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	_ = httpSrv.Shutdown(ctx)
}

// buildEngine resolves the run's models through the same entry point as the
// batch CLI and sizes the streaming engine from the run metadata.
func buildEngine(info rundir.Info, timeslice time.Duration, window, maxWin int, bounded bool, parallel int) (*stream.Engine, error) {
	models, err := grade10.ModelsForEngine(info.Engine, grade10.ModelParams{
		Job:              info.Job,
		Cores:            info.Cores,
		NetBandwidth:     info.NetBandwidth,
		DiskBandwidth:    info.DiskBandwidth,
		ThreadsPerWorker: info.ThreadsPerWorker,
	})
	if err != nil {
		return nil, err
	}
	resources := 3 // cpu, net-in, net-out
	if info.DiskBandwidth > 0 {
		resources++
	}
	cfg := stream.Config{
		Models:            models,
		WindowSlices:      window,
		MaxWindows:        maxWin,
		ExpectedInstances: info.Workers * resources,
		RetainForFinal:    !bounded,
		Parallelism:       parallel,
	}
	if timeslice > 0 {
		cfg.Timeslice = vtime.Duration(timeslice)
	}
	return stream.New(cfg)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "serve: %v\n", err)
	os.Exit(1)
}
