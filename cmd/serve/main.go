// Command serve is the live characterization service: it tails a run
// directory while cmd/runsim (or any engine) is still writing it, feeds the
// execution log and monitoring through the streaming engine, and serves the
// evolving performance profile over HTTP — JSON endpoints for dashboards,
// Prometheus text metrics for scraping, the self-trace as a Perfetto-loadable
// Chrome trace-event file, and, once the run completes, the exact final
// report (byte-identical to cmd/grade10 on the same directory).
//
// Usage:
//
//	serve -run run/ -addr :7070
//	open  localhost:7070/ui/         # embedded visual profiler (heatmap,
//	                                 # timeline, comms matrix, click-through
//	                                 # explain; live SSE on /api/events)
//	curl localhost:7070/profile      # live profile (JSON)
//	curl localhost:7070/metrics      # Prometheus text format
//	curl localhost:7070/trace        # Chrome trace-event JSON (Perfetto)
//	curl localhost:7070/report       # final report (503 until the run ends)
//	curl localhost:7070/explain      # -explain: provenance query ?q=...
//	curl localhost:7070/healthz      # 503 + reason when ingest goes stale
//	curl localhost:7070/alerts       # -alert-rules: rules + firing/pending/resolved (JSON)
//
// The service is robust to producers in progress: files that do not exist
// yet, partially written lines, and garbled log content are handled by
// waiting, buffering, and counting respectively. With -stale, /healthz
// reports degraded (HTTP 503) when no input has arrived for the given
// wall-clock duration while the run is still open.
//
// Fleet mode (-fleet, mutually exclusive with -run) serves many runs at
// once: a watch directory is polled for new run subdirectories, each is
// admitted through a bounded scheduler (-fleet-active concurrent engines,
// -fleet-queue backlog, everything beyond that shed and counted), and the
// cross-run endpoints come up instead of the single-run ones:
//
//	serve -fleet runs/ -addr :7070 -store archive/ -store-shards 4
//	curl localhost:7070/fleet/runs          # every run + admission counters
//	curl -X POST -d '{"dir":"runs/x"}' localhost:7070/fleet/runs
//	curl localhost:7070/fleet/bottlenecks   # top-K across all runs
//	curl localhost:7070/fleet/regressions   # top-K archive diff verdicts
//	curl 'localhost:7070/fleet/blame?run=a' # cross-job blame split
//	curl 'localhost:7070/diff?a=ID&b=ID'    # archived-run diff (JSON or ?format=text)
//	open  localhost:7070/ui/                # visual profiler with run picker + diff view
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"path/filepath"

	"grade10/internal/alert"
	"grade10/internal/fleet"
	"grade10/internal/flight"
	"grade10/internal/grade10"
	"grade10/internal/obs"
	"grade10/internal/profdiff"
	"grade10/internal/profstore"
	"grade10/internal/rundir"
	"grade10/internal/stream"
	"grade10/internal/ui"
	"grade10/internal/vtime"
)

var logger *slog.Logger

func main() {
	var (
		runDir      = flag.String("run", "", "run directory to tail (required)")
		addr        = flag.String("addr", ":7070", "HTTP listen address")
		poll        = flag.Duration("poll", 100*time.Millisecond, "file polling interval")
		idle        = flag.Duration("idle", time.Second, "idle time after which the run counts as complete")
		timeslice   = flag.Duration("timeslice", 0, "analysis timeslice (virtual; default 10ms)")
		window      = flag.Int("window", 64, "timeslices per live analysis window")
		maxWin      = flag.Int("max-windows", 32, "recent windows retained for /windows")
		bounded     = flag.Bool("bounded", false, "strictly bounded memory: drop raw inputs, /report serves no exact text")
		parallel    = flag.Int("parallelism", 0, "analysis worker count (0 = GOMAXPROCS); results are identical for every value")
		pprofOn     = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
		uiOn        = flag.Bool("ui", true, "serve the embedded visual profiler under /ui/ (view models under /api/, live updates over SSE on /api/events)")
		explainOn   = flag.Bool("explain", false, "capture attribution provenance and serve /explain queries")
		stale       = flag.Duration("stale", 0, "report /healthz degraded (503) when the last ingested input is older than this (0 disables)")
		storeDir    = flag.String("store", "", "profile archive directory: serve /runs and /diff, and archive this run once finalized")
		storeMax    = flag.Int("store-max", 0, "archive retention: keep at most this many runs, evicting oldest first (0 = unbounded; per shard with -store-shards)")
		storeShards = flag.Int("store-shards", 0, "shard the archive index by run-ID prefix into this many shards (0 = single index; existing single-index archives migrate in place)")
		runLabel    = flag.String("run-label", "", "free-form label recorded with the archived run")
		logFormat   = flag.String("log-format", "text", "diagnostic log format: text or json")
		logLevel    = flag.String("log-level", "info", "diagnostic log level: debug, info, warn, or error")

		alertRules   = flag.String("alert-rules", "", "alert rules file: threshold rules fire on every window flush, baseline-regression rules on finalized runs (vs the -store archive); serves /alerts")
		alertWebhook = flag.String("alert-webhook", "", "POST each batch of alert lifecycle transitions to this URL as JSON, with retry/backoff (needs -alert-rules)")

		bundleDir    = flag.String("bundle-dir", "", "flight recorder: write triggered diagnostics bundles (pprof, self-trace, log ring, window and alert snapshots) under this directory; empty disables bundle capture (the in-memory rings stay on)")
		bundleMax    = flag.Int("bundle-max", 16, "flight recorder: retain at most this many bundles, evicting oldest first")
		bundleMinGap = flag.Duration("bundle-min-interval", time.Minute, "flight recorder: minimum interval between bundles of the same trigger kind")
		bundleCPU    = flag.Duration("bundle-cpu-profile", 250*time.Millisecond, "flight recorder: CPU-profile sampling duration per bundle (negative disables the CPU profile)")

		fleetDir     = flag.String("fleet", "", "fleet mode: watch this directory for run subdirectories and characterize them all (mutually exclusive with -run)")
		fleetActive  = flag.Int("fleet-active", 8, "fleet mode: max concurrently ingesting runs")
		fleetQueue   = flag.Int("fleet-queue", 64, "fleet mode: admission backlog depth; registrations beyond active+queue are shed")
		stallTimeout = flag.Duration("stall-timeout", 0, "fleet mode: tear a run down if run.json has not appeared this long after admission (0 disables)")
		shutdownTO   = flag.Duration("shutdown-timeout", 5*time.Second, "graceful shutdown budget: drain in-flight window flushes/finalizes and HTTP before exiting")
	)
	flag.Parse()
	var err error
	// Every log record tees into the flight recorder's bounded ring (down to
	// debug, regardless of -log-level) so /logs and bundle captures carry
	// recent history.
	logRing := obs.NewLogRing(0)
	logger, err = obs.NewLoggerWithRing(os.Stderr, "serve", *logFormat, *logLevel, logRing)
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		os.Exit(2)
	}
	if (*runDir == "") == (*fleetDir == "") {
		logger.Error("exactly one of -run (single run) or -fleet (watch directory) is required")
		os.Exit(2)
	}
	// Alert rules parse before anything expensive so a typo fails fast with
	// the rule text and position; the webhook notifier is shared by both
	// modes and drains its queue on shutdown.
	var rules []alert.Rule
	if *alertRules != "" {
		rules, err = loadAlertRules(*alertRules)
		if err != nil {
			logger.Error(err.Error())
			os.Exit(2)
		}
	}
	if *alertWebhook != "" && len(rules) == 0 {
		logger.Error("-alert-webhook needs -alert-rules")
		os.Exit(2)
	}
	var notifier *alert.Notifier
	if *alertWebhook != "" {
		notifier = alert.NewNotifier(*alertWebhook, alert.NotifierOptions{Logger: logger})
	}
	if *fleetDir != "" {
		runFleet(*fleetDir, *addr, fleetOptions{
			active: *fleetActive, queue: *fleetQueue, stall: *stallTimeout,
			poll: *poll, idle: *idle, timeslice: *timeslice,
			window: *window, maxWin: *maxWin, parallel: *parallel,
			explain: *explainOn, storeDir: *storeDir, storeMax: *storeMax,
			storeShards: *storeShards, shutdownTO: *shutdownTO, ui: *uiOn,
			alertRules: rules, notifier: notifier,
			logRing: logRing, bundleDir: *bundleDir, bundleMax: *bundleMax,
			bundleMinGap: *bundleMinGap, bundleCPU: *bundleCPU,
		})
		return
	}

	// The handler swaps from "warming up" to the live server once run.json
	// reveals which engine's models to build. atomic.Pointer keeps the swap
	// type-safe across the two concrete handler types.
	var handler atomic.Pointer[http.Handler]
	warming := http.Handler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			fmt.Fprintln(w, "ok")
			return
		}
		http.Error(w, "waiting for run metadata (run.json)", http.StatusServiceUnavailable)
	}))
	handler.Store(&warming)
	httpSrv := &http.Server{Addr: *addr, Handler: http.HandlerFunc(
		func(w http.ResponseWriter, r *http.Request) {
			(*handler.Load()).ServeHTTP(w, r)
		})}
	go func() {
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			fail(err)
		}
	}()
	logger.Info(fmt.Sprintf("listening on %s, tailing %s", *addr, *runDir))

	stop := make(chan struct{})
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigCh
		close(stop)
	}()

	// Until the engine exists, log bytes and monitoring rows buffer; run.json
	// may legitimately appear after data starts landing. Log bytes are tailed
	// raw (not line-split) so both enginelog formats stream transparently.
	var (
		engine        *stream.Engine
		pendingLog    []byte
		pendingRows   []rundir.MonitoringRow
		liveSrv       *stream.Server
		runInfo       rundir.Info
		alertEv       *alert.Evaluator
		publishAlerts func([]alert.Event)
		recorder      *flight.Recorder
		capt          *flight.Capturer
	)
	// Per-run overhead accounting: what characterizing this run costs the
	// framework itself. Diagnostics only — never feeds analysis output.
	runName := filepath.Base(filepath.Clean(*runDir))
	account := &obs.RunAccount{}
	overheadFn := func() []obs.RunOverhead {
		return []obs.RunOverhead{{Run: runName, OverheadSnapshot: account.Snapshot()}}
	}
	// The SSE broker exists before the engine: buildEngine wires its
	// OnWindowFlush hook into the stream config so every flushed window
	// becomes one `event: window` frame on /api/events.
	var broker *ui.Broker
	if *uiOn {
		broker = ui.NewBroker(0)
	}
	sink := rundir.FollowSink{
		Info: func(info rundir.Info) {
			runInfo = info
			tracer := obs.NewTracer()
			recorder = flight.NewRecorder(tracer, logRing)
			// The archive opens before the engine so baseline-regression
			// rules can learn per-cell robust stats from prior runs of the
			// same job — before this run's own record is archived.
			var store profstore.Archive
			if *storeDir != "" {
				st, err := openArchive(*storeDir, *storeMax, *storeShards)
				if err != nil {
					fail(err)
				}
				store = st
			}
			if len(rules) > 0 {
				var base *alert.Baselines
				if store != nil {
					base = alert.LearnArchive(store)
					logger.Info("learned alert baselines",
						"runs", base.Runs(), "cells", base.Len())
				}
				alertEv = alert.NewEvaluator(rules, base, alert.Config{})
			}
			capt = newCapturer(*bundleDir, *bundleMax, *bundleMinGap, *bundleCPU, recorder, alertEv, overheadFn)
			watchSIGQUIT(capt)
			if alertEv != nil {
				publishAlerts = func(evs []alert.Event) {
					recorder.OnAlerts(evs)
					onFiring(capt, evs, runName)
					if broker != nil {
						broker.PublishAlerts(evs)
					}
					if notifier != nil {
						notifier.Notify(evs)
					}
				}
			}
			onFlush := func(wr *stream.WindowResult) {
				if broker != nil {
					broker.OnWindowFlush(wr)
				}
				recorder.OnWindowFlush(runName, wr)
			}
			e, err := buildEngine(info, *timeslice, *window, *maxWin, *bounded, *parallel, *explainOn, tracer, onFlush, alertEv, publishAlerts, account)
			if err != nil {
				fail(err)
			}
			engine = e
			if len(pendingLog) > 0 {
				engine.IngestChunk(pendingLog)
			}
			for _, row := range pendingRows {
				engine.IngestRow(row)
			}
			pendingLog, pendingRows = nil, nil
			srv := stream.NewServer(engine)
			if *pprofOn {
				srv.EnablePprof()
			}
			srv.SetStaleThreshold(*stale)
			if store != nil {
				srv.SetStore(store, profdiff.Config{})
			}
			srv.Handle("/logs", "recent log records from the flight recorder's ring (?level=&limit=)",
				flight.LogsHandler(logRing))
			srv.Handle("/debug/overhead", "framework overhead accounting for this run (JSON)",
				flight.OverheadHandler(overheadFn))
			if capt != nil {
				bh := flight.BundlesHandler(capt)
				srv.Handle("/debug/bundle", "POST: capture a diagnostics bundle now (?detail=)",
					flight.TriggerHandler(capt))
				srv.Handle("/debug/bundles", "captured diagnostics bundles (JSON)", bh)
				srv.Handle("/debug/bundles/", "fetch one diagnostics bundle as a tar stream", bh)
			}
			// The registry feeds /metrics with the tracer bridge (per-stage
			// histograms), Go runtime gauges, and the engine's staleness and
			// parser-health gauges.
			reg := obs.NewRegistry()
			obs.RegisterRuntime(reg)
			obs.BridgeTracer(reg, tracer)
			srv.RegisterEngineMetrics(reg)
			srv.RegisterStoreMetrics(reg)
			recorder.RegisterMetrics(reg)
			capt.RegisterMetrics(reg)
			flight.RegisterOverheadMetrics(reg, overheadFn)
			if alertEv != nil {
				srv.SetAlerts(alertEv, alert.RegisterMetrics(reg, alertEv))
			}
			if broker != nil {
				broker.RegisterMetrics(reg)
				uis := ui.NewServer(ui.Config{Engine: engine, Broker: broker, Alerts: alertEv, Overhead: overheadFn})
				srv.MountUI(uis, uis.Routes())
			}
			srv.SetRegistry(reg)
			liveSrv = srv
			live := http.Handler(srv)
			handler.Store(&live)
			if capt != nil {
				capt.WatchHealth(stop, 0, srv.Degraded)
			}
			logger.Info(fmt.Sprintf("%s run of %q on %d workers; live endpoints up",
				info.Engine, info.Job, info.Workers))
		},
		LogChunk: func(chunk []byte) {
			if engine != nil {
				engine.IngestChunk(chunk)
			} else {
				pendingLog = append(pendingLog, chunk...)
			}
		},
		MonitoringRow: func(row rundir.MonitoringRow) {
			if engine != nil {
				engine.IngestRow(row)
			} else {
				pendingRows = append(pendingRows, row)
			}
		},
	}
	if err := rundir.Follow(*runDir, rundir.FollowOptions{Poll: *poll, Idle: *idle}, stop, sink); err != nil {
		fail(err)
	}
	if engine == nil {
		fail(fmt.Errorf("stopped before %s appeared in %s", "run.json", *runDir))
	}

	out, err := engine.Finalize()
	if err != nil {
		fail(err)
	}
	st := engine.Stats()
	logger.Info("run complete",
		"events", st.Events, "skipped_lines", st.ParseErrors,
		"samples", st.Samples, "windows", st.WindowsFlushed)
	if out != nil {
		logger.Info("exact report ready at /report")
	} else {
		logger.Info("bounded mode: live profile at /profile, no exact /report")
	}
	// Archive the finalized profile so /runs and /diff can compare this run
	// against earlier ones; requires the exact output (retain mode).
	if *storeDir != "" && liveSrv != nil {
		if out == nil {
			logger.Info("bounded mode: nothing archived (no exact profile)")
		} else {
			rec := profstore.BuildRecord(runInfo, out)
			rec.Label = *runLabel
			meta, evicted, err := liveSrv.ArchiveRecord(rec)
			if err != nil {
				fail(err)
			}
			logger.Info("archived run", "id", meta.ID, "evicted", len(evicted))
		}
	}
	// Baseline-regression rules only see finalized records: evaluate the
	// completed run against the archive-learned baselines (a clean run here
	// resolves alerts a noisy earlier run left firing).
	if alertEv != nil && out != nil {
		rec := profstore.BuildRecord(runInfo, out)
		rec.Label = *runLabel
		evs := alertEv.EvalRecord(rec, filepath.Base(filepath.Clean(*runDir)))
		for _, tr := range evs {
			logger.Info("alert transition", "rule", tr.Rule, "from", tr.From, "to", tr.To)
		}
		if len(evs) > 0 && publishAlerts != nil {
			publishAlerts(evs)
		}
		if n := alertEv.FiringCount(); n > 0 {
			logger.Warn("alerts firing at run end", "firing", n)
		}
	}

	// Graceful shutdown: the finalize above already drained every in-flight
	// window flush (Follow returns before Finalize runs), so all that is
	// left is letting in-flight HTTP requests complete within the budget.
	<-stop
	ctx, cancel := context.WithTimeout(context.Background(), *shutdownTO)
	defer cancel()
	if broker != nil {
		broker.Shutdown() // end SSE streams so HTTP shutdown can drain
	}
	_ = httpSrv.Shutdown(ctx)
	if capt != nil {
		capt.Close() // drain queued bundle captures
	}
	if notifier != nil {
		notifier.Close()
	}
}

// openArchive opens the profile archive in single-index or sharded layout.
// With shards > 0 an existing single-index archive migrates in place.
func openArchive(dir string, maxRuns, shards int) (profstore.Archive, error) {
	if shards > 0 {
		return profstore.OpenSharded(dir, profstore.ShardedOptions{
			Shards: shards, MaxRunsPerShard: maxRuns,
		})
	}
	return profstore.Open(dir, profstore.Options{MaxRuns: maxRuns})
}

// loadAlertRules parses the -alert-rules file.
func loadAlertRules(path string) ([]alert.Rule, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rules, err := alert.ParseRules(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rules, nil
}

// fleetOptions carries the fleet-mode flag values.
type fleetOptions struct {
	active, queue         int
	stall, poll, idle     time.Duration
	timeslice             time.Duration
	window, maxWin        int
	parallel              int
	explain               bool
	storeDir              string
	storeMax, storeShards int
	shutdownTO            time.Duration
	ui                    bool
	alertRules            []alert.Rule
	notifier              *alert.Notifier
	logRing               *obs.LogRing
	bundleDir             string
	bundleMax             int
	bundleMinGap          time.Duration
	bundleCPU             time.Duration
}

// newCapturer builds the flight bundle capturer from the -bundle-* flags, or
// nil when -bundle-dir is unset.
func newCapturer(dir string, max int, minGap, cpu time.Duration, rec *flight.Recorder, ev *alert.Evaluator, overhead func() []obs.RunOverhead) *flight.Capturer {
	if dir == "" {
		return nil
	}
	capt, err := flight.NewCapturer(flight.Config{
		Dir: dir, MaxBundles: max, MinInterval: minGap, CPUProfile: cpu,
		Recorder: rec, Alerts: ev, Overhead: overhead, Logger: logger,
	})
	if err != nil {
		fail(err)
	}
	return capt
}

// watchSIGQUIT captures a bundle on every SIGQUIT instead of the runtime's
// stack-dump-and-exit default: the process stays up and the operator gets
// profiles, trace, and logs on disk.
func watchSIGQUIT(capt *flight.Capturer) {
	if capt == nil {
		return
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGQUIT)
	go func() {
		for range ch {
			logger.Info("SIGQUIT: capturing diagnostics bundle")
			capt.Trigger(flight.TriggerSignal, "SIGQUIT", nil)
		}
	}()
}

// onFiring triggers a bundle capture for every alert transitioning to firing.
func onFiring(capt *flight.Capturer, evs []alert.Event, run string) {
	if capt == nil {
		return
	}
	for _, ev := range evs {
		if ev.To == alert.StateFiring {
			var runs []string
			if run != "" {
				runs = []string{run}
			}
			capt.Trigger(flight.TriggerAlert, "alert "+ev.Rule+" firing", runs)
			return // one trigger per batch; the rate limit would eat the rest anyway
		}
	}
}

// runFleet is fleet mode: many concurrent runs behind the admission
// scheduler, discovered from the watch directory or registered over HTTP.
func runFleet(watchDir, addr string, opt fleetOptions) {
	cfg := fleet.Config{
		MaxActive:    opt.active,
		QueueDepth:   opt.queue,
		StallTimeout: opt.stall,
		Poll:         opt.poll,
		Idle:         opt.idle,
		WindowSlices: opt.window,
		MaxWindows:   opt.maxWin,
		Parallelism:  opt.parallel,
		Explain:      opt.explain,
		Logger:       logger,
	}
	if opt.timeslice > 0 {
		cfg.Timeslice = vtime.Duration(opt.timeslice)
	}
	if opt.storeDir != "" {
		store, err := openArchive(opt.storeDir, opt.storeMax, opt.storeShards)
		if err != nil {
			fail(err)
		}
		cfg.Archive = store
	}
	// Fleet SSE carries only alert frames (window frames are single-run);
	// the broker still feeds the UI banner's live refresh.
	var broker *ui.Broker
	if opt.ui {
		broker = ui.NewBroker(0)
	}
	var alertEv *alert.Evaluator
	if len(opt.alertRules) > 0 {
		var base *alert.Baselines
		if cfg.Archive != nil {
			base = alert.LearnArchive(cfg.Archive)
			logger.Info("learned alert baselines",
				"runs", base.Runs(), "cells", base.Len())
		}
		alertEv = alert.NewEvaluator(opt.alertRules, base, alert.Config{})
		cfg.Alerts = alertEv
	}
	// Flight recorder: window snapshots from every run's flush hook, bundle
	// captures on firing alerts, stall/shed incidents, degraded health,
	// SIGQUIT, and POST /debug/bundle. Fleet engines carry no tracer, so
	// bundles omit the self-trace section here.
	recorder := flight.NewRecorder(nil, opt.logRing)
	cfg.OnWindowFlush = recorder.OnWindowFlush
	var fl *fleet.Fleet
	capt := newCapturer(opt.bundleDir, opt.bundleMax, opt.bundleMinGap, opt.bundleCPU,
		recorder, alertEv, func() []obs.RunOverhead {
			if fl == nil {
				return nil // capture raced fleet construction
			}
			return fl.Overhead()
		})
	watchSIGQUIT(capt)
	if capt != nil {
		cfg.OnIncident = func(kind, detail, run string) {
			capt.Trigger(flight.Trigger(kind), detail, []string{run})
		}
	}
	if alertEv != nil {
		cfg.OnAlert = func(evs []alert.Event) {
			recorder.OnAlerts(evs)
			if len(evs) > 0 {
				onFiring(capt, evs, evs[0].Run)
			}
			if broker != nil {
				broker.PublishAlerts(evs)
			}
			if opt.notifier != nil {
				opt.notifier.Notify(evs)
			}
		}
	}
	fl = fleet.New(cfg)
	srv := fleet.NewServer(fl)
	srv.Handle("/logs", "recent log records from the flight recorder's ring (?level=&limit=)",
		flight.LogsHandler(opt.logRing))
	srv.Handle("/debug/overhead", "per-run framework overhead accounting (JSON)",
		flight.OverheadHandler(fl.Overhead))
	if capt != nil {
		bh := flight.BundlesHandler(capt)
		srv.Handle("/debug/bundle", "POST: capture a diagnostics bundle now (?detail=)",
			flight.TriggerHandler(capt))
		srv.Handle("/debug/bundles", "captured diagnostics bundles (JSON)", bh)
		srv.Handle("/debug/bundles/", "fetch one diagnostics bundle as a tar stream", bh)
	}
	// Fleet UI: run picker over /fleet/runs, per-run view models via
	// /api/*?run=, archive diffs via /diff, alert banner via /api/alerts
	// with SSE alert frames on /api/events.
	if opt.ui {
		uis := ui.NewServer(ui.Config{Fleet: fl, Broker: broker, Alerts: alertEv, Overhead: fl.Overhead})
		srv.MountUI(uis, uis.Routes())
	}
	reg := obs.NewRegistry()
	obs.RegisterRuntime(reg)
	if broker != nil {
		broker.RegisterMetrics(reg)
	}
	if alertEv != nil {
		srv.SetAlerts(alertEv, alert.RegisterMetrics(reg, alertEv))
	}
	srv.RegisterMetrics(reg)
	recorder.RegisterMetrics(reg)
	capt.RegisterMetrics(reg)
	flight.RegisterOverheadMetrics(reg, fl.Overhead)

	httpSrv := &http.Server{Addr: addr, Handler: srv}
	go func() {
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			fail(err)
		}
	}()
	logger.Info(fmt.Sprintf("fleet mode: listening on %s, watching %s (active<=%d queue<=%d)",
		addr, watchDir, opt.active, opt.queue))

	stop := make(chan struct{})
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigCh
		close(stop)
	}()
	if capt != nil {
		capt.WatchHealth(stop, 0, func() (bool, string) {
			h := srv.Health()
			if h.Status == "ok" {
				return false, ""
			}
			return true, strings.Join(h.Reasons, "; ")
		})
	}

	if err := fl.Watch(watchDir, stop); err != nil {
		fail(err)
	}

	// Drain: let every active run finish its in-flight flush/finalize (each
	// still archives), then stop HTTP, all within the shutdown budget.
	ctx, cancel := context.WithTimeout(context.Background(), opt.shutdownTO)
	defer cancel()
	if err := fl.Shutdown(ctx); err != nil {
		logger.Warn(err.Error())
	}
	if broker != nil {
		broker.Shutdown() // end SSE streams so HTTP shutdown can drain
	}
	_ = httpSrv.Shutdown(ctx)
	if capt != nil {
		capt.Close() // drain queued bundle captures
	}
	if opt.notifier != nil {
		opt.notifier.Close()
	}
}

// buildEngine resolves the run's models through the same entry point as the
// batch CLI and sizes the streaming engine from the run metadata. The tracer
// self-traces window flushes and the final batch pipeline, feeding /trace.
func buildEngine(info rundir.Info, timeslice time.Duration, window, maxWin int, bounded bool, parallel int, explainOn bool, tracer *obs.Tracer, onFlush func(*stream.WindowResult), alerts *alert.Evaluator, onAlert func([]alert.Event), account *obs.RunAccount) (*stream.Engine, error) {
	models, err := grade10.ModelsForEngine(info.Engine, grade10.ModelParams{
		Job:              info.Job,
		Cores:            info.Cores,
		NetBandwidth:     info.NetBandwidth,
		DiskBandwidth:    info.DiskBandwidth,
		ThreadsPerWorker: info.ThreadsPerWorker,
	})
	if err != nil {
		return nil, err
	}
	resources := 3 // cpu, net-in, net-out
	if info.DiskBandwidth > 0 {
		resources++
	}
	cfg := stream.Config{
		Models:            models,
		WindowSlices:      window,
		MaxWindows:        maxWin,
		ExpectedInstances: info.Workers * resources,
		RetainForFinal:    !bounded,
		Parallelism:       parallel,
		Tracer:            tracer,
		Explain:           explainOn,
		OnWindowFlush:     onFlush,
		Alerts:            alerts,
		OnAlert:           onAlert,
		Account:           account,
	}
	if timeslice > 0 {
		cfg.Timeslice = vtime.Duration(timeslice)
	}
	return stream.New(cfg)
}

func fail(err error) {
	logger.Error(err.Error())
	os.Exit(1)
}
