// Command experiments regenerates the paper's tables and figures on the
// simulated substrate (see DESIGN.md §4 for the experiment index and
// EXPERIMENTS.md for paper-vs-measured results).
//
// Usage:
//
//	experiments -exp all
//	experiments -exp table2
//	experiments -exp fig3 -csv fig3.csv
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"grade10/internal/experiments"
	"grade10/internal/obs"
)

var logger *slog.Logger

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment: fig2, fig3, table2, fig4, fig5, fig6, regress, or all")
		csvOut    = flag.String("csv", "", "fig3: also write the series CSV to this file")
		logFormat = flag.String("log-format", "text", "diagnostic log format: text or json")
		logLevel  = flag.String("log-level", "info", "diagnostic log level: debug, info, warn, or error")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for the duration of the experiments")
	)
	flag.Parse()
	var err error
	logger, err = obs.NewLogger(os.Stderr, "experiments", *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}
	if *pprofAddr != "" {
		bound, stopPprof, err := obs.ServePprof(*pprofAddr)
		if err != nil {
			logger.Error("pprof listener: " + err.Error())
			os.Exit(2)
		}
		defer stopPprof()
		logger.Info("pprof on http://" + bound + "/debug/pprof/")
	}

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("==== %s ====\n", name)
		if err := fn(); err != nil {
			logger.Error(name + ": " + err.Error())
			os.Exit(1)
		}
		fmt.Println()
	}

	run("fig2", func() error {
		r, err := experiments.Figure2()
		if err != nil {
			return err
		}
		experiments.PrintFig2(os.Stdout, r)
		return nil
	})
	run("fig3", func() error {
		r, err := experiments.Figure3()
		if err != nil {
			return err
		}
		experiments.PrintFig3(os.Stdout, r)
		if *csvOut != "" {
			f, err := os.Create(*csvOut)
			if err != nil {
				return err
			}
			defer f.Close()
			experiments.Fig3CSV(f, r)
		}
		return nil
	})
	run("table2", func() error {
		rows, err := experiments.Table2()
		if err != nil {
			return err
		}
		experiments.PrintTable2(os.Stdout, rows)
		return nil
	})
	run("fig4", func() error {
		rows, err := experiments.Figure4()
		if err != nil {
			return err
		}
		experiments.PrintFig4(os.Stdout, rows)
		return nil
	})
	run("fig5", func() error {
		rows, err := experiments.Figure5()
		if err != nil {
			return err
		}
		experiments.PrintFig5(os.Stdout, rows)
		return nil
	})
	run("fig6", func() error {
		r, err := experiments.Figure6()
		if err != nil {
			return err
		}
		experiments.PrintFig6(os.Stdout, r)
		return nil
	})
	run("regress", func() error {
		r, err := experiments.Regress()
		if err != nil {
			return err
		}
		experiments.PrintRegress(os.Stdout, r)
		if r.Report.Verdict != "regressed" || !r.Localized {
			return fmt.Errorf("watchdog failed: verdict=%s localized=%v (want regressed + compute/thread × cpu)",
				r.Report.Verdict, r.Localized)
		}
		return nil
	})
}
