// Command gengraph generates synthetic graph datasets as edge-list files —
// the stand-ins for the Graphalytics datasets (see DESIGN.md §2).
//
// Usage:
//
//	gengraph -type rmat -scale 14 -edgefactor 16 -seed 1 -out rmat.el
//	gengraph -type community -vertices 10000 -communities 32 -out comm.el
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"grade10/internal/graph"
	"grade10/internal/obs"
)

var logger *slog.Logger

func main() {
	var (
		typ         = flag.String("type", "rmat", "graph type: rmat, community, ring, er")
		scale       = flag.Int("scale", 12, "rmat: log2 of vertex count")
		edgeFactor  = flag.Int("edgefactor", 16, "rmat/er: edges per vertex")
		vertices    = flag.Int("vertices", 4096, "community/ring/er: vertex count")
		communities = flag.Int("communities", 32, "community: community count")
		intraDegree = flag.Int("intradegree", 6, "community: intra-community degree")
		interFrac   = flag.Float64("interfraction", 0.05, "community: cross-community edge fraction")
		seed        = flag.Int64("seed", 1, "generator seed")
		out         = flag.String("out", "", "output file (default stdout)")
		logFormat   = flag.String("log-format", "text", "diagnostic log format: text or json")
		logLevel    = flag.String("log-level", "info", "diagnostic log level: debug, info, warn, or error")
	)
	flag.Parse()
	var err error
	logger, err = obs.NewLogger(os.Stderr, "gengraph", *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gengraph: %v\n", err)
		os.Exit(2)
	}

	var g *graph.Graph
	switch *typ {
	case "rmat":
		g = graph.RMAT(*scale, *edgeFactor, *seed)
	case "community":
		g = graph.Community(graph.CommunityParams{
			Vertices: *vertices, Communities: *communities,
			IntraDegree: *intraDegree, InterFraction: *interFrac, Seed: *seed,
		})
	case "ring":
		g = graph.Ring(*vertices)
	case "er":
		g = graph.ErdosRenyi(*vertices, *vertices**edgeFactor, *seed)
	default:
		logger.Error(fmt.Sprintf("unknown type %q", *typ))
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	if err := graph.WriteEdgeList(w, g); err != nil {
		fail(err)
	}
	logger.Info("generated graph", "vertices", g.NumVertices(), "edges", g.NumEdges())
}

func fail(err error) {
	logger.Error(err.Error())
	os.Exit(1)
}
