// Command gengraph generates synthetic graph datasets as edge-list files —
// the stand-ins for the Graphalytics datasets (see DESIGN.md §2).
//
// Usage:
//
//	gengraph -type rmat -scale 14 -edgefactor 16 -seed 1 -out rmat.el
//	gengraph -type community -vertices 10000 -communities 32 -out comm.el
package main

import (
	"flag"
	"fmt"
	"os"

	"grade10/internal/graph"
)

func main() {
	var (
		typ         = flag.String("type", "rmat", "graph type: rmat, community, ring, er")
		scale       = flag.Int("scale", 12, "rmat: log2 of vertex count")
		edgeFactor  = flag.Int("edgefactor", 16, "rmat/er: edges per vertex")
		vertices    = flag.Int("vertices", 4096, "community/ring/er: vertex count")
		communities = flag.Int("communities", 32, "community: community count")
		intraDegree = flag.Int("intradegree", 6, "community: intra-community degree")
		interFrac   = flag.Float64("interfraction", 0.05, "community: cross-community edge fraction")
		seed        = flag.Int64("seed", 1, "generator seed")
		out         = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	var g *graph.Graph
	switch *typ {
	case "rmat":
		g = graph.RMAT(*scale, *edgeFactor, *seed)
	case "community":
		g = graph.Community(graph.CommunityParams{
			Vertices: *vertices, Communities: *communities,
			IntraDegree: *intraDegree, InterFraction: *interFrac, Seed: *seed,
		})
	case "ring":
		g = graph.Ring(*vertices)
	case "er":
		g = graph.ErdosRenyi(*vertices, *vertices**edgeFactor, *seed)
	default:
		fmt.Fprintf(os.Stderr, "gengraph: unknown type %q\n", *typ)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gengraph: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := graph.WriteEdgeList(w, g); err != nil {
		fmt.Fprintf(os.Stderr, "gengraph: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "gengraph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
}
