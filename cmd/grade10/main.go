// Command grade10 analyzes a run directory produced by cmd/runsim: it builds
// the framework models from the run metadata (or loads custom ones from
// JSON), executes the full characterization pipeline (trace building,
// resource attribution, bottleneck identification, performance-issue
// detection), and prints the performance profile.
//
// Usage:
//
//	grade10 -run run/
//	grade10 -run run/ -timeslice 20ms -untuned -csv consumption.csv
//	grade10 -run run/ -dump-models giraph.json
//	grade10 -run run/ -models custom.json
//	grade10 -run run/ -trace trace.json   # open in ui.perfetto.dev
//	grade10 -run run/ -explain 'phase=/pr/execute/superstep/worker/compute/thread machine=0 resource=cpu'
//	grade10 -run run/ -store profiles/ -run-label baseline
//	grade10 -store profiles/ -diff runA runB -diff-out delta.json
//	grade10 -run run/ -store profiles/ -alert-rules alerts.rules   # exit 4 when a rule fires
//	grade10 -blame runA runA/ runB/   # cross-job blame across co-scheduled runs
//	grade10 -convert run/ -o run-bin/           # text run dir → binary (auto)
//	grade10 -convert execution.log -o log.bin -to binary
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"path/filepath"

	"grade10/internal/alert"
	"grade10/internal/enginelog"
	"grade10/internal/explain"
	"grade10/internal/fleet"
	"grade10/internal/grade10"
	"grade10/internal/obs"
	"grade10/internal/profdiff"
	"grade10/internal/profstore"
	"grade10/internal/report"
	"grade10/internal/rundir"
	"grade10/internal/vtime"
)

var logger *slog.Logger

func main() {
	var (
		runDir    = flag.String("run", "", "run directory from cmd/runsim (required)")
		timeslice = flag.Duration("timeslice", 0, "analysis timeslice (default 10ms)")
		untuned   = flag.Bool("untuned", false, "giraph: analyze without attribution rules or GC/queue models")
		csvOut    = flag.String("csv", "", "write per-timeslice consumption CSV to this file")
		modelsIn  = flag.String("models", "", "load models from this JSON file instead of the built-ins")
		modelsOut = flag.String("dump-models", "", "write the models used to this JSON file")
		parallel  = flag.Int("parallelism", 0, "analysis worker count (0 = GOMAXPROCS); output is identical for every value")
		explainQ  = flag.String("explain", "", "provenance query: 'phase=<type-path> machine=<m> resource=<name> [t0..t1]'; prints the derivation chain instead of the report")
		format    = flag.String("format", "text", "-explain output format: text or json")
		traceOut  = flag.String("trace", "", "write a Chrome trace-event file (pipeline self-trace + job profile) to this path")
		logFormat = flag.String("log-format", "text", "diagnostic log format: text or json")
		logLevel  = flag.String("log-level", "info", "diagnostic log level: debug, info, warn, or error")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for the duration of the analysis")

		storeDir = flag.String("store", "", "profile archive directory: archive this analysis (with -run) or serve -diff")
		storeMax = flag.Int("store-max", 0, "archive retention: keep at most this many runs, evicting oldest first (0 = unbounded)")
		runLabel = flag.String("run-label", "", "free-form label recorded with the archived run")

		alertRulesPath = flag.String("alert-rules", "", "alert rules file: evaluate the finalized profile (baselines learned from -store history, before this run is archived) and exit 4 when any rule fires")
		alertOut       = flag.String("alert-out", "", "also write the alert snapshot as JSON to this file (needs -alert-rules)")

		convertIn = flag.String("convert", "", "convert an enginelog (or a whole run directory) between the text and binary formats: grade10 -convert INPUT -o OUTPUT [-to text|binary]")
		convertTo = flag.String("to", "", "-convert target format: text or binary (default: the opposite of the detected input format)")
		outPath   = flag.String("o", "", "-convert output path (file or directory, matching the input)")

		blameTarget   = flag.String("blame", "", "cross-job blame: grade10 -blame TARGET RUNDIR... characterizes every run directory (their run.json placement manifests declare the shared hosts) and splits TARGET's contended time across its co-scheduled neighbors")
		blameOut      = flag.String("blame-out", "", "also write the blame report as JSON to this file")
		diffMode      = flag.Bool("diff", false, "diff two archived runs: grade10 -store DIR -diff RUN_A RUN_B (IDs or unique prefixes)")
		diffOut       = flag.String("diff-out", "", "also write the diff report as JSON to this file")
		diffThreshold = flag.Float64("diff-threshold", 0, "makespan fraction separating neutral from improved/regressed (default 0.05)")
		failOnRegress = flag.Bool("fail-on-regress", false, "exit with status 3 when the diff verdict is regressed")
	)
	flag.Parse()
	var err error
	logger, err = obs.NewLogger(os.Stderr, "grade10", *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "grade10: %v\n", err)
		os.Exit(2)
	}
	if *pprofAddr != "" {
		bound, stopPprof, err := obs.ServePprof(*pprofAddr)
		if err != nil {
			logger.Error("pprof listener: " + err.Error())
			os.Exit(2)
		}
		defer stopPprof()
		logger.Info("pprof on http://" + bound + "/debug/pprof/")
	}
	if *convertIn != "" {
		if *outPath == "" {
			logger.Error("-convert needs -o OUTPUT")
			os.Exit(2)
		}
		runConvert(*convertIn, *outPath, *convertTo)
		return
	}
	if *diffMode {
		if *storeDir == "" || flag.NArg() != 2 {
			logger.Error("-diff needs -store DIR and exactly two run IDs: grade10 -store DIR -diff RUN_A RUN_B")
			os.Exit(2)
		}
		runDiff(*storeDir, *storeMax, flag.Arg(0), flag.Arg(1), *diffThreshold, *diffOut, *failOnRegress)
		return
	}
	if *blameTarget != "" {
		if flag.NArg() < 2 {
			logger.Error("-blame needs the target name and at least two run directories: grade10 -blame TARGET RUNDIR RUNDIR...")
			os.Exit(2)
		}
		runBlame(*blameTarget, flag.Args(), vtime.Duration(*timeslice), *parallel, *format, *blameOut)
		return
	}
	if *runDir == "" {
		logger.Error("-run is required")
		os.Exit(2)
	}

	// Alert rules parse before the (expensive) pipeline so a typo fails fast.
	var alertRuleSet []alert.Rule
	if *alertRulesPath != "" {
		f, ferr := os.Open(*alertRulesPath)
		if ferr != nil {
			logger.Error(ferr.Error())
			os.Exit(2)
		}
		alertRuleSet, err = alert.ParseRules(f)
		f.Close()
		if err != nil {
			logger.Error(fmt.Sprintf("%s: %v", *alertRulesPath, err))
			os.Exit(2)
		}
	}
	if *alertOut != "" && *alertRulesPath == "" {
		logger.Error("-alert-out needs -alert-rules")
		os.Exit(2)
	}

	run, err := rundir.Load(*runDir)
	if err != nil {
		fail(err)
	}
	models, log, err := resolveModels(run, *modelsIn, *untuned)
	if err != nil {
		fail(err)
	}
	if *modelsOut != "" {
		f, err := os.Create(*modelsOut)
		if err != nil {
			fail(err)
		}
		if err := grade10.SaveModels(f, models); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		logger.Info("wrote " + *modelsOut)
	}

	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer()
	}

	ts := grade10.DefaultTimeslice
	if *timeslice > 0 {
		ts = vtime.Duration(*timeslice)
	}
	in := grade10.Input{
		Log:         log,
		Monitoring:  run.Monitoring,
		Models:      models,
		Timeslice:   ts,
		Parallelism: *parallel,
		Tracer:      tracer,
	}
	var query explain.Query
	var rec *explain.Recorder
	if *explainQ != "" {
		// Parse before the (expensive) pipeline runs so a typo fails fast.
		query, err = explain.ParseQuery(*explainQ)
		if err != nil {
			logger.Error(err.Error())
			os.Exit(2)
		}
		if *format != "text" && *format != "json" {
			logger.Error("-format must be text or json")
			os.Exit(2)
		}
		rec = explain.NewRecorder(0)
		in.Recorder = rec
	}
	out, err := grade10.Characterize(in)
	if err != nil {
		fail(err)
	}

	if *explainQ != "" {
		ex := explain.NewExplainer(out.Profile, rec)
		d, err := ex.Explain(query)
		if err != nil {
			fail(err)
		}
		if *format == "json" {
			err = d.WriteJSON(os.Stdout)
		} else {
			err = d.WriteText(os.Stdout)
		}
		if err != nil {
			fail(err)
		}
		return
	}

	if err := report.WriteAll(os.Stdout, out); err != nil {
		fail(err)
	}
	writeParseFooter(os.Stdout, run)
	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := report.WriteConsumptionCSV(f, out); err != nil {
			fail(err)
		}
		logger.Info("wrote " + *csvOut)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fail(err)
		}
		if err := report.WriteTraceEvents(f, out, tracer); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		logger.Info("wrote trace", "path", *traceOut, "spans", len(tracer.Spans()))
	}
	var alertBase *alert.Baselines
	if *storeDir != "" {
		store, err := profstore.Open(*storeDir, profstore.Options{MaxRuns: *storeMax})
		if err != nil {
			fail(err)
		}
		if len(alertRuleSet) > 0 {
			// Learn before Put: this run must not contribute to the baseline
			// it is judged against.
			alertBase = alert.LearnArchive(store)
		}
		rec := profstore.BuildRecord(run.Info, out)
		rec.Label = *runLabel
		meta, evicted, err := store.Put(rec)
		if err != nil {
			fail(err)
		}
		fmt.Printf("\narchived run %s (%d runs stored)\n", meta.ID, store.Len())
		for _, id := range evicted {
			logger.Info("evicted oldest run", "id", id)
		}
	}
	if len(alertRuleSet) > 0 {
		runAlerts(alertRuleSet, alertBase, run, out, *runDir, *runLabel, *alertOut)
	}
}

// runAlerts evaluates the finalized profile against the rules file: threshold
// rules see the record's summary metrics (makespan_seconds, stragglers,
// underutilized_fraction, utilization[key]), baseline-regression rules
// compare against the archive-learned per-cell robust stats. Exit status 4
// flags firing alerts, so CI can gate on "this run is anomalous" (2 is usage,
// 3 is -fail-on-regress).
func runAlerts(rules []alert.Rule, base *alert.Baselines, run *rundir.Run, out *grade10.Output, runDir, label, jsonOut string) {
	if base != nil {
		logger.Info("learned alert baselines", "runs", base.Runs(), "cells", base.Len())
	}
	ev := alert.NewEvaluator(rules, base, alert.Config{})
	rec := profstore.BuildRecord(run.Info, out)
	rec.Label = label
	ev.EvalRecord(rec, filepath.Base(filepath.Clean(runDir)))
	snap := ev.Snapshot()
	fmt.Println()
	alert.WriteText(os.Stdout, snap)
	if jsonOut != "" {
		f, err := os.Create(jsonOut)
		if err != nil {
			fail(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		logger.Info("wrote " + jsonOut)
	}
	if snap.Firing > 0 {
		logger.Error("alerts firing", "firing", snap.Firing)
		os.Exit(4)
	}
}

// runBlame characterizes every run directory with the batch pipeline, builds
// each run's shared-host demand timeline from its placement manifest, and
// prints the cross-job blame split for the target run (named by its
// directory base name).
func runBlame(target string, dirs []string, timeslice vtime.Duration, parallel int, format, jsonOut string) {
	ts := grade10.DefaultTimeslice
	if timeslice > 0 {
		ts = timeslice
	}
	profiles := make([]*fleet.BlameProfile, 0, len(dirs))
	for _, dir := range dirs {
		name := filepath.Base(filepath.Clean(dir))
		run, err := rundir.Load(dir)
		if err != nil {
			fail(err)
		}
		if len(run.Info.Placement) == 0 {
			logger.Warn("run has no placement manifest (runsim -hosts); it shares nothing", "run", name)
		}
		models, log, err := resolveModels(run, "", false)
		if err != nil {
			fail(err)
		}
		out, err := grade10.Characterize(grade10.Input{
			Log: log, Monitoring: run.Monitoring, Models: models,
			Timeslice: ts, Parallelism: parallel,
		})
		if err != nil {
			fail(fmt.Errorf("characterizing %s: %w", dir, err))
		}
		profiles = append(profiles, fleet.BuildBlameProfile(name, run.Info, out, ts))
	}
	rep, err := fleet.Blame(profiles, target, fleet.BlameConfig{SliceWidth: ts, Parallelism: parallel})
	if err != nil {
		fail(err)
	}
	if format == "json" {
		err = fleet.WriteBlameJSON(os.Stdout, rep)
	} else {
		err = fleet.WriteBlameText(os.Stdout, rep)
	}
	if err != nil {
		fail(err)
	}
	if jsonOut != "" {
		f, err := os.Create(jsonOut)
		if err != nil {
			fail(err)
		}
		if err := fleet.WriteBlameJSON(f, rep); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		logger.Info("wrote " + jsonOut)
	}
}

// runDiff loads two archived runs (by ID or unique prefix), diffs them, and
// writes the ranked text report to stdout plus optional JSON. Exit status 3
// flags a regression when -fail-on-regress is set.
func runDiff(dir string, maxRuns int, idA, idB string, threshold float64, jsonOut string, failOnRegress bool) {
	store, err := profstore.Open(dir, profstore.Options{MaxRuns: maxRuns})
	if err != nil {
		fail(err)
	}
	a, err := store.Get(idA)
	if err != nil {
		fail(err)
	}
	b, err := store.Get(idB)
	if err != nil {
		fail(err)
	}
	cfg := profdiff.Config{RegressThreshold: threshold, ImproveThreshold: threshold}
	rep, err := profdiff.Diff(a, b, cfg)
	if err != nil {
		fail(err)
	}
	if err := profdiff.WriteText(os.Stdout, rep); err != nil {
		fail(err)
	}
	if jsonOut != "" {
		f, err := os.Create(jsonOut)
		if err != nil {
			fail(err)
		}
		if err := profdiff.WriteJSON(f, rep); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		logger.Info("wrote " + jsonOut)
	}
	if failOnRegress && rep.Verdict == profdiff.Regressed {
		logger.Error("regression detected", "a", rep.A.ID, "b", rep.B.ID)
		os.Exit(3)
	}
}

// writeParseFooter appends the log-robustness summary (enginelog.ParseStats
// plus input format and decode throughput) to the report. It lives here
// rather than in report.WriteAll so the HTTP /report endpoint stays
// byte-identical to the batch report body. The throughput line is
// wall-clock-derived and therefore host-dependent; byte-identity tests strip
// it along with the other diagnostics.
func writeParseFooter(w *os.File, run *rundir.Run) {
	st := run.LogStats
	fmt.Fprintf(w, "\nlog parse: %s format, %d lines, %d events, %d malformed skipped, %d truncated\n",
		run.LogFormat, st.Lines, st.Events, st.Skipped, st.Truncated)
	if st.Skipped > 0 && st.FirstError != "" {
		fmt.Fprintf(w, "  first parse error: %s\n", st.FirstError)
	}
	if run.LogBytes > 0 && run.LogParse > 0 {
		secs := run.LogParse.Seconds()
		fmt.Fprintf(w, "  decoded %.2f MB in %s (%.1f MB/s, %.0f events/s)\n",
			float64(run.LogBytes)/1e6, run.LogParse.Round(time.Microsecond),
			float64(run.LogBytes)/1e6/secs, float64(st.Events)/secs)
	}
}

// runConvert rewrites an enginelog — a bare log file or a whole run
// directory — in the other format (or the one forced with -to). Run-dir
// conversion rewrites execution.log and copies run.json and monitoring.csv
// verbatim, so the converted directory is drop-in for every consumer.
func runConvert(input, output, to string) {
	if to != "" && to != "text" && to != "binary" {
		logger.Error("-to must be text or binary")
		os.Exit(2)
	}
	fi, err := os.Stat(input)
	if err != nil {
		fail(err)
	}
	if fi.IsDir() {
		if err := os.MkdirAll(output, 0o755); err != nil {
			fail(err)
		}
		for _, name := range []string{"run.json", "monitoring.csv"} {
			data, err := os.ReadFile(filepath.Join(input, name))
			if err != nil {
				fail(err)
			}
			if err := os.WriteFile(filepath.Join(output, name), data, 0o644); err != nil {
				fail(err)
			}
		}
		convertLogFile(filepath.Join(input, "execution.log"), filepath.Join(output, "execution.log"), to)
		logger.Info("converted run directory", "from", input, "to", output)
		return
	}
	convertLogFile(input, output, to)
}

func convertLogFile(input, output, to string) {
	in, err := os.Open(input)
	if err != nil {
		fail(err)
	}
	defer in.Close()
	log, stats, format, err := enginelog.ReadStatsAny(in)
	if err != nil {
		fail(err)
	}
	if stats.Degraded() {
		logger.Warn("input log is degraded; converting the surviving events",
			"skipped", stats.Skipped, "truncated", stats.Truncated, "first_error", stats.FirstError)
	}
	target := enginelog.FormatBinary
	switch {
	case to == "text":
		target = enginelog.FormatText
	case to == "binary":
	case format == enginelog.FormatBinary:
		target = enginelog.FormatText
	}
	out, err := os.Create(output)
	if err != nil {
		fail(err)
	}
	var werr error
	if target == enginelog.FormatBinary {
		werr = enginelog.WriteBinary(out, log)
	} else {
		werr = enginelog.Write(out, log)
	}
	if werr != nil {
		out.Close()
		fail(werr)
	}
	if err := out.Close(); err != nil {
		fail(err)
	}
	var outSize int64
	if ofi, err := os.Stat(output); err == nil {
		outSize = ofi.Size()
	}
	var inSize int64
	if ifi, err := os.Stat(input); err == nil {
		inSize = ifi.Size()
	}
	logger.Info("converted enginelog",
		"events", stats.Events, "from", format.String(), "to", target.String(),
		"in_bytes", inSize, "out_bytes", outSize)
}

// resolveModels picks the models: a JSON file when given, otherwise the
// built-in framework model named in the run metadata (with the untuned
// variant filtering GC/queue events from the log, as in Table II).
func resolveModels(run *rundir.Run, modelsIn string, untuned bool) (grade10.Models, *enginelog.Log, error) {
	if modelsIn != "" {
		f, err := os.Open(modelsIn)
		if err != nil {
			return grade10.Models{}, nil, err
		}
		defer f.Close()
		models, err := grade10.LoadModels(f)
		return models, run.Log, err
	}
	params := grade10.ModelParams{
		Job:              run.Info.Job,
		Cores:            run.Info.Cores,
		NetBandwidth:     run.Info.NetBandwidth,
		DiskBandwidth:    run.Info.DiskBandwidth,
		ThreadsPerWorker: run.Info.ThreadsPerWorker,
	}
	switch run.Info.Engine {
	case "giraph":
		if untuned {
			models, err := grade10.GiraphModelUntuned(params)
			log := grade10.FilterBlocking(run.Log, grade10.ResGC, grade10.ResMsgQueue)
			return models, log, err
		}
		models, err := grade10.GiraphModel(params)
		return models, run.Log, err
	case "powergraph":
		if untuned {
			return grade10.Models{}, nil, fmt.Errorf("-untuned is only meaningful for the giraph engine")
		}
		models, err := grade10.PowerGraphModel(params)
		return models, run.Log, err
	default:
		return grade10.Models{}, nil, fmt.Errorf("unknown engine %q in run metadata", run.Info.Engine)
	}
}

func fail(err error) {
	logger.Error(err.Error())
	os.Exit(1)
}
