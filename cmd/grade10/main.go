// Command grade10 analyzes a run directory produced by cmd/runsim: it builds
// the framework models from the run metadata (or loads custom ones from
// JSON), executes the full characterization pipeline (trace building,
// resource attribution, bottleneck identification, performance-issue
// detection), and prints the performance profile.
//
// Usage:
//
//	grade10 -run run/
//	grade10 -run run/ -timeslice 20ms -untuned -csv consumption.csv
//	grade10 -run run/ -dump-models giraph.json
//	grade10 -run run/ -models custom.json
package main

import (
	"flag"
	"fmt"
	"os"

	"grade10/internal/enginelog"
	"grade10/internal/grade10"
	"grade10/internal/report"
	"grade10/internal/rundir"
	"grade10/internal/vtime"
)

func main() {
	var (
		runDir    = flag.String("run", "", "run directory from cmd/runsim (required)")
		timeslice = flag.Duration("timeslice", 0, "analysis timeslice (default 10ms)")
		untuned   = flag.Bool("untuned", false, "giraph: analyze without attribution rules or GC/queue models")
		csvOut    = flag.String("csv", "", "write per-timeslice consumption CSV to this file")
		modelsIn  = flag.String("models", "", "load models from this JSON file instead of the built-ins")
		modelsOut = flag.String("dump-models", "", "write the models used to this JSON file")
		parallel  = flag.Int("parallelism", 0, "analysis worker count (0 = GOMAXPROCS); output is identical for every value")
	)
	flag.Parse()
	if *runDir == "" {
		fmt.Fprintln(os.Stderr, "grade10: -run is required")
		os.Exit(2)
	}

	run, err := rundir.Load(*runDir)
	if err != nil {
		fail(err)
	}
	models, log, err := resolveModels(run, *modelsIn, *untuned)
	if err != nil {
		fail(err)
	}
	if *modelsOut != "" {
		f, err := os.Create(*modelsOut)
		if err != nil {
			fail(err)
		}
		if err := grade10.SaveModels(f, models); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "grade10: wrote %s\n", *modelsOut)
	}

	ts := grade10.DefaultTimeslice
	if *timeslice > 0 {
		ts = vtime.Duration(*timeslice)
	}
	out, err := grade10.Characterize(grade10.Input{
		Log:         log,
		Monitoring:  run.Monitoring,
		Models:      models,
		Timeslice:   ts,
		Parallelism: *parallel,
	})
	if err != nil {
		fail(err)
	}

	if err := report.WriteAll(os.Stdout, out); err != nil {
		fail(err)
	}
	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := report.WriteConsumptionCSV(f, out); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "grade10: wrote %s\n", *csvOut)
	}
}

// resolveModels picks the models: a JSON file when given, otherwise the
// built-in framework model named in the run metadata (with the untuned
// variant filtering GC/queue events from the log, as in Table II).
func resolveModels(run *rundir.Run, modelsIn string, untuned bool) (grade10.Models, *enginelog.Log, error) {
	if modelsIn != "" {
		f, err := os.Open(modelsIn)
		if err != nil {
			return grade10.Models{}, nil, err
		}
		defer f.Close()
		models, err := grade10.LoadModels(f)
		return models, run.Log, err
	}
	params := grade10.ModelParams{
		Job:              run.Info.Job,
		Cores:            run.Info.Cores,
		NetBandwidth:     run.Info.NetBandwidth,
		DiskBandwidth:    run.Info.DiskBandwidth,
		ThreadsPerWorker: run.Info.ThreadsPerWorker,
	}
	switch run.Info.Engine {
	case "giraph":
		if untuned {
			models, err := grade10.GiraphModelUntuned(params)
			log := grade10.FilterBlocking(run.Log, grade10.ResGC, grade10.ResMsgQueue)
			return models, log, err
		}
		models, err := grade10.GiraphModel(params)
		return models, run.Log, err
	case "powergraph":
		if untuned {
			return grade10.Models{}, nil, fmt.Errorf("-untuned is only meaningful for the giraph engine")
		}
		models, err := grade10.PowerGraphModel(params)
		return models, run.Log, err
	default:
		return grade10.Models{}, nil, fmt.Errorf("unknown engine %q in run metadata", run.Info.Engine)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "grade10: %v\n", err)
	os.Exit(1)
}
