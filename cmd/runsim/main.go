// Command runsim executes a graph workload on one of the simulated engines
// and saves the run (execution log, monitoring samples, metadata) to a
// directory for cmd/grade10 to analyze — the SUT half of the paper's
// Figure 1 pipeline.
//
// Usage:
//
//	runsim -engine giraph -algorithm pagerank -graph rmat.el -out run/
//	runsim -engine powergraph -algorithm cdlp -dataset datagen -bug -out run/
//	runsim -engine giraph -algorithm pagerank -out run/ -serve :7070 -linger 30s
//
// With -serve, a live characterization server (the same endpoints as
// cmd/serve) runs during the simulation, fed in-process through a tap on the
// engine's logger; -linger keeps it up after the run for inspection.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"grade10/internal/cluster"
	"grade10/internal/experiments"
	"grade10/internal/giraphsim"
	"grade10/internal/grade10"
	"grade10/internal/graph"
	"grade10/internal/pgsim"
	"grade10/internal/rundir"
	"grade10/internal/stream"
	"grade10/internal/vtime"
	"grade10/internal/workload"
)

func main() {
	var (
		engine    = flag.String("engine", "giraph", "engine: giraph or powergraph")
		algorithm = flag.String("algorithm", "pagerank", "algorithm: bfs, pagerank, wcc, cdlp, sssp")
		graphFile = flag.String("graph", "", "edge-list file (overrides -dataset)")
		dataset   = flag.String("dataset", "rmat", "built-in dataset: rmat or datagen")
		workers   = flag.Int("workers", 4, "worker/machine count")
		threads   = flag.Int("threads", 8, "compute threads per worker")
		scale     = flag.Float64("scale", 1, "compute cost scale factor")
		bug       = flag.Bool("bug", false, "powergraph: inject the §IV-D synchronization bug")
		interval  = flag.Duration("interval", 0, "monitoring interval (virtual; default 50ms)")
		out       = flag.String("out", "", "output run directory (required)")
		serveAddr = flag.String("serve", "", "serve live characterization on this address while the simulation runs")
		linger    = flag.Duration("linger", 0, "with -serve: keep the server up this long after the run")
		parallel  = flag.Int("parallelism", 0, "host-side precompute/analysis worker count (0 = GOMAXPROCS); logs and results are identical for every value")
		pprofOn   = flag.Bool("pprof", false, "with -serve: expose net/http/pprof under /debug/pprof/")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "runsim: -out is required")
		os.Exit(2)
	}

	g, err := loadGraph(*graphFile, *dataset)
	if err != nil {
		fail(err)
	}
	prog, err := workload.NewProgram(*algorithm, g)
	if err != nil {
		fail(err)
	}
	monInterval := 50 * vtime.Millisecond
	if *interval > 0 {
		monInterval = vtime.Duration(*interval)
	}

	run := &rundir.Run{}
	var live *liveServe
	switch *engine {
	case "giraph":
		cfg := experiments.GiraphConfig(*scale)
		cfg.Workers = *workers
		cfg.ThreadsPerWorker = *threads
		cfg.Parallelism = *parallel
		if *serveAddr != "" {
			l, err := startLive(*serveAddr, "giraph", prog.Name(), cfg.Workers, cfg.ThreadsPerWorker, cfg.Machine, *parallel, *pprofOn)
			if err != nil {
				fail(err)
			}
			live = l
			cfg.Tee = live.tap.Func()
		}
		part := graph.HashPartition(g, cfg.Workers)
		res, err := giraphsim.Run(prog, part, cfg)
		if err != nil {
			fail(err)
		}
		run.Log = res.Log
		run.Monitoring, err = cluster.Monitor(res.Cluster, res.Start, res.End, monInterval)
		if err != nil {
			fail(err)
		}
		run.Info = rundir.Info{
			Engine: "giraph", Job: prog.Name(), Workers: cfg.Workers,
			ThreadsPerWorker: cfg.ThreadsPerWorker, Cores: cfg.Machine.Cores,
			NetBandwidth: cfg.Machine.NetBandwidth, DiskBandwidth: cfg.Machine.DiskBandwidth,
			StartNS: int64(res.Start), EndNS: int64(res.End),
		}
		fmt.Fprintf(os.Stderr, "runsim: %s on giraph: makespan %v, %d supersteps, %d GCs, %d queue stalls\n",
			prog.Name(), res.End.Sub(res.Start), res.Stats.Supersteps,
			res.Stats.GCCount, res.Stats.QueueStalls)

	case "powergraph":
		cfg := experiments.PowerGraphConfig(*scale, *bug)
		cfg.Workers = *workers
		cfg.ThreadsPerWorker = *threads
		cfg.Parallelism = *parallel
		if *serveAddr != "" {
			l, err := startLive(*serveAddr, "powergraph", prog.Name(), cfg.Workers, cfg.ThreadsPerWorker, cfg.Machine, *parallel, *pprofOn)
			if err != nil {
				fail(err)
			}
			live = l
			cfg.Tee = live.tap.Func()
		}
		res, err := pgsim.Run(prog, cfg)
		if err != nil {
			fail(err)
		}
		run.Log = res.Log
		run.Monitoring, err = cluster.Monitor(res.Cluster, res.Start, res.End, monInterval)
		if err != nil {
			fail(err)
		}
		run.Info = rundir.Info{
			Engine: "powergraph", Job: prog.Name(), Workers: cfg.Workers,
			ThreadsPerWorker: cfg.ThreadsPerWorker, Cores: cfg.Machine.Cores,
			NetBandwidth: cfg.Machine.NetBandwidth, DiskBandwidth: cfg.Machine.DiskBandwidth,
			StartNS: int64(res.Start), EndNS: int64(res.End),
		}
		fmt.Fprintf(os.Stderr, "runsim: %s on powergraph: makespan %v, %d iterations, replication %.2f\n",
			prog.Name(), res.End.Sub(res.Start), res.Stats.Iterations,
			res.Stats.ReplicationFactor)

	default:
		fmt.Fprintf(os.Stderr, "runsim: unknown engine %q\n", *engine)
		os.Exit(2)
	}

	if err := rundir.Save(*out, run); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "runsim: saved %d log events to %s\n", len(run.Log.Events), *out)
	if live != nil {
		live.finish(run.Monitoring, *linger)
	}
}

// liveServe bundles the in-process live characterization pipeline: a
// streaming engine fed through a tap on the simulator's logger, served over
// HTTP while the simulation runs.
type liveServe struct {
	engine *stream.Engine
	tap    *stream.Tap
	srv    *http.Server
}

// startLive builds the streaming engine from the same models the batch
// analyzer would resolve for this run, installs the HTTP server, and returns
// the bundle whose tap hook goes into the simulator's Config.Tee.
func startLive(addr, engineName, job string, workers, threads int, m cluster.MachineSpec, parallel int, pprofOn bool) (*liveServe, error) {
	models, err := grade10.ModelsForEngine(engineName, grade10.ModelParams{
		Job:              job,
		Cores:            m.Cores,
		NetBandwidth:     m.NetBandwidth,
		DiskBandwidth:    m.DiskBandwidth,
		ThreadsPerWorker: threads,
	})
	if err != nil {
		return nil, err
	}
	resources := 3 // cpu, net-in, net-out
	if m.DiskBandwidth > 0 {
		resources++
	}
	se, err := stream.New(stream.Config{
		Models:            models,
		ExpectedInstances: workers * resources,
		RetainForFinal:    true,
		Parallelism:       parallel,
	})
	if err != nil {
		return nil, err
	}
	handler := stream.NewServer(se)
	if pprofOn {
		handler.EnablePprof()
	}
	ls := &liveServe{
		engine: se,
		tap:    stream.NewTap(se, 0, stream.BlockWhenFull),
		srv:    &http.Server{Addr: addr, Handler: handler},
	}
	go func() {
		if err := ls.srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "runsim: live server: %v\n", err)
		}
	}()
	fmt.Fprintf(os.Stderr, "runsim: live characterization on %s\n", addr)
	return ls, nil
}

// finish drains the tap, feeds the run's monitoring samples, finalizes the
// exact profile, and keeps serving for the linger duration before shutdown.
func (ls *liveServe) finish(monitoring []cluster.ResourceSamples, linger time.Duration) {
	ls.tap.Close()
	ls.engine.LogDone()
	for _, rs := range monitoring {
		for _, s := range rs.Samples.Samples {
			ls.engine.IngestSample(rs.Machine, rs.Resource, rs.Capacity, s)
		}
	}
	ls.engine.MonitoringDone()
	if _, err := ls.engine.Finalize(); err != nil {
		fmt.Fprintf(os.Stderr, "runsim: live finalize: %v\n", err)
	} else if linger > 0 {
		fmt.Fprintf(os.Stderr, "runsim: exact report at /report for %v\n", linger)
	}
	if linger > 0 {
		time.Sleep(linger)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	_ = ls.srv.Shutdown(ctx)
}

func loadGraph(file, dataset string) (*graph.Graph, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.ReadEdgeList(f)
	}
	for _, d := range workload.Datasets() {
		if d.Name == dataset {
			return d.Graph(), nil
		}
	}
	return nil, fmt.Errorf("unknown dataset %q (have rmat, datagen)", dataset)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "runsim: %v\n", err)
	os.Exit(1)
}
