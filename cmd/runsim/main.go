// Command runsim executes a graph workload on one of the simulated engines
// and saves the run (execution log, monitoring samples, metadata) to a
// directory for cmd/grade10 to analyze — the SUT half of the paper's
// Figure 1 pipeline.
//
// Usage:
//
//	runsim -engine giraph -algorithm pagerank -graph rmat.el -out run/
//	runsim -engine powergraph -algorithm cdlp -dataset datagen -bug -out run/
package main

import (
	"flag"
	"fmt"
	"os"

	"grade10/internal/cluster"
	"grade10/internal/experiments"
	"grade10/internal/giraphsim"
	"grade10/internal/graph"
	"grade10/internal/pgsim"
	"grade10/internal/rundir"
	"grade10/internal/vtime"
	"grade10/internal/workload"
)

func main() {
	var (
		engine    = flag.String("engine", "giraph", "engine: giraph or powergraph")
		algorithm = flag.String("algorithm", "pagerank", "algorithm: bfs, pagerank, wcc, cdlp, sssp")
		graphFile = flag.String("graph", "", "edge-list file (overrides -dataset)")
		dataset   = flag.String("dataset", "rmat", "built-in dataset: rmat or datagen")
		workers   = flag.Int("workers", 4, "worker/machine count")
		threads   = flag.Int("threads", 8, "compute threads per worker")
		scale     = flag.Float64("scale", 1, "compute cost scale factor")
		bug       = flag.Bool("bug", false, "powergraph: inject the §IV-D synchronization bug")
		interval  = flag.Duration("interval", 0, "monitoring interval (virtual; default 50ms)")
		out       = flag.String("out", "", "output run directory (required)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "runsim: -out is required")
		os.Exit(2)
	}

	g, err := loadGraph(*graphFile, *dataset)
	if err != nil {
		fail(err)
	}
	prog, err := workload.NewProgram(*algorithm, g)
	if err != nil {
		fail(err)
	}
	monInterval := 50 * vtime.Millisecond
	if *interval > 0 {
		monInterval = vtime.Duration(*interval)
	}

	run := &rundir.Run{}
	switch *engine {
	case "giraph":
		cfg := experiments.GiraphConfig(*scale)
		cfg.Workers = *workers
		cfg.ThreadsPerWorker = *threads
		part := graph.HashPartition(g, cfg.Workers)
		res, err := giraphsim.Run(prog, part, cfg)
		if err != nil {
			fail(err)
		}
		run.Log = res.Log
		run.Monitoring, err = cluster.Monitor(res.Cluster, res.Start, res.End, monInterval)
		if err != nil {
			fail(err)
		}
		run.Info = rundir.Info{
			Engine: "giraph", Job: prog.Name(), Workers: cfg.Workers,
			ThreadsPerWorker: cfg.ThreadsPerWorker, Cores: cfg.Machine.Cores,
			NetBandwidth: cfg.Machine.NetBandwidth, DiskBandwidth: cfg.Machine.DiskBandwidth,
			StartNS: int64(res.Start), EndNS: int64(res.End),
		}
		fmt.Fprintf(os.Stderr, "runsim: %s on giraph: makespan %v, %d supersteps, %d GCs, %d queue stalls\n",
			prog.Name(), res.End.Sub(res.Start), res.Stats.Supersteps,
			res.Stats.GCCount, res.Stats.QueueStalls)

	case "powergraph":
		cfg := experiments.PowerGraphConfig(*scale, *bug)
		cfg.Workers = *workers
		cfg.ThreadsPerWorker = *threads
		res, err := pgsim.Run(prog, cfg)
		if err != nil {
			fail(err)
		}
		run.Log = res.Log
		run.Monitoring, err = cluster.Monitor(res.Cluster, res.Start, res.End, monInterval)
		if err != nil {
			fail(err)
		}
		run.Info = rundir.Info{
			Engine: "powergraph", Job: prog.Name(), Workers: cfg.Workers,
			ThreadsPerWorker: cfg.ThreadsPerWorker, Cores: cfg.Machine.Cores,
			NetBandwidth: cfg.Machine.NetBandwidth, DiskBandwidth: cfg.Machine.DiskBandwidth,
			StartNS: int64(res.Start), EndNS: int64(res.End),
		}
		fmt.Fprintf(os.Stderr, "runsim: %s on powergraph: makespan %v, %d iterations, replication %.2f\n",
			prog.Name(), res.End.Sub(res.Start), res.Stats.Iterations,
			res.Stats.ReplicationFactor)

	default:
		fmt.Fprintf(os.Stderr, "runsim: unknown engine %q\n", *engine)
		os.Exit(2)
	}

	if err := rundir.Save(*out, run); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "runsim: saved %d log events to %s\n", len(run.Log.Events), *out)
}

func loadGraph(file, dataset string) (*graph.Graph, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.ReadEdgeList(f)
	}
	for _, d := range workload.Datasets() {
		if d.Name == dataset {
			return d.Graph(), nil
		}
	}
	return nil, fmt.Errorf("unknown dataset %q (have rmat, datagen)", dataset)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "runsim: %v\n", err)
	os.Exit(1)
}
