// Command runsim executes a graph workload on one of the simulated engines
// and saves the run (execution log, monitoring samples, metadata) to a
// directory for cmd/grade10 to analyze — the SUT half of the paper's
// Figure 1 pipeline.
//
// Usage:
//
//	runsim -engine giraph -algorithm pagerank -graph rmat.el -out run/
//	runsim -engine powergraph -algorithm cdlp -dataset datagen -bug -out run/
//	runsim -engine giraph -algorithm pagerank -out run/ -serve :7070 -linger 30s
//	runsim -engine giraph -algorithm pagerank -out run/ -trace trace.json
//
// With -serve, a live characterization server (the same endpoints as
// cmd/serve, including the embedded visual profiler under /ui/) runs during
// the simulation, fed in-process through a tap on the engine's logger;
// -linger keeps it up after the run for inspection. With
// -trace, the simulator's self-trace (supersteps/iterations with their
// virtual-time windows, plus any live-analysis stages) is written as a
// Chrome trace-event file loadable in Perfetto.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"time"

	"grade10/internal/cluster"
	"grade10/internal/experiments"
	"grade10/internal/flight"
	"grade10/internal/giraphsim"
	"grade10/internal/grade10"
	"grade10/internal/graph"
	"grade10/internal/obs"
	"grade10/internal/pgsim"
	"grade10/internal/report"
	"grade10/internal/rundir"
	"grade10/internal/stream"
	"grade10/internal/ui"
	"grade10/internal/vtime"
	"grade10/internal/workload"
)

var (
	logger *slog.Logger
	// logRing is the flight recorder's bounded log ring, teed from every
	// logger record; the live server exposes it at /logs.
	logRing *obs.LogRing
)

func main() {
	var (
		engine    = flag.String("engine", "giraph", "engine: giraph or powergraph")
		algorithm = flag.String("algorithm", "pagerank", "algorithm: bfs, pagerank, wcc, cdlp, sssp")
		graphFile = flag.String("graph", "", "edge-list file (overrides -dataset)")
		dataset   = flag.String("dataset", "rmat", "built-in dataset: rmat or datagen")
		workers   = flag.Int("workers", 4, "worker/machine count")
		threads   = flag.Int("threads", 8, "compute threads per worker")
		scale     = flag.Float64("scale", 1, "compute cost scale factor")
		noise     = flag.Float64("noise", -1, "OS background-noise cores per machine (cluster.Noise); -1 keeps the engine default, larger values inject a CPU slowdown for regression experiments")
		bug       = flag.Bool("bug", false, "powergraph: inject the §IV-D synchronization bug")
		interval  = flag.Duration("interval", 0, "monitoring interval (virtual; default 50ms)")
		out       = flag.String("out", "", "output run directory (required)")
		hosts     = flag.String("hosts", "", "co-scheduling manifest: comma-separated shared host names, one per worker (round-robin if fewer); recorded in run.json for fleet cross-job blame")
		serveAddr = flag.String("serve", "", "serve live characterization on this address while the simulation runs")
		linger    = flag.Duration("linger", 0, "with -serve: keep the server up this long after the run")
		parallel  = flag.Int("parallelism", 0, "host-side precompute/analysis worker count (0 = GOMAXPROCS); logs and results are identical for every value")
		pprofOn   = flag.Bool("pprof", false, "with -serve: expose net/http/pprof under /debug/pprof/")
		uiOn      = flag.Bool("ui", true, "with -serve: mount the embedded visual profiler under /ui/ (live SSE updates on /api/events)")
		explainOn = flag.Bool("explain", false, "with -serve: capture attribution provenance and serve /explain queries")
		traceOut  = flag.String("trace", "", "write the simulator/analysis self-trace as Chrome trace-event JSON to this path")
		binaryLog = flag.Bool("binary-log", false, "write execution.log in the compact binary enginelog format (consumers auto-detect either format)")
		logFormat = flag.String("log-format", "text", "diagnostic log format: text or json")
		logLevel  = flag.String("log-level", "info", "diagnostic log level: debug, info, warn, or error")
	)
	flag.Parse()
	var err error
	logRing = obs.NewLogRing(0)
	logger, err = obs.NewLoggerWithRing(os.Stderr, "runsim", *logFormat, *logLevel, logRing)
	if err != nil {
		fmt.Fprintf(os.Stderr, "runsim: %v\n", err)
		os.Exit(2)
	}
	if *out == "" {
		logger.Error("-out is required")
		os.Exit(2)
	}

	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer()
	}

	g, err := loadGraph(*graphFile, *dataset)
	if err != nil {
		fail(err)
	}
	prog, err := workload.NewProgram(*algorithm, g)
	if err != nil {
		fail(err)
	}
	monInterval := 50 * vtime.Millisecond
	if *interval > 0 {
		monInterval = vtime.Duration(*interval)
	}

	run := &rundir.Run{}
	var live *liveServe
	switch *engine {
	case "giraph":
		cfg := experiments.GiraphConfig(*scale)
		cfg.Workers = *workers
		cfg.ThreadsPerWorker = *threads
		cfg.Parallelism = *parallel
		cfg.Tracer = tracer
		if *noise >= 0 {
			cfg.OSNoiseCores = *noise
		}
		if *serveAddr != "" {
			l, err := startLive(*serveAddr, "giraph", prog.Name(), cfg.Workers, cfg.ThreadsPerWorker, cfg.Machine, *parallel, *pprofOn, *explainOn, *uiOn, tracer)
			if err != nil {
				fail(err)
			}
			live = l
			cfg.Tee = live.tap.Func()
		}
		part := graph.HashPartition(g, cfg.Workers)
		res, err := giraphsim.Run(prog, part, cfg)
		if err != nil {
			fail(err)
		}
		run.Log = res.Log
		run.Monitoring, err = cluster.Monitor(res.Cluster, res.Start, res.End, monInterval)
		if err != nil {
			fail(err)
		}
		run.Info = rundir.Info{
			Engine: "giraph", Job: prog.Name(), Workers: cfg.Workers,
			ThreadsPerWorker: cfg.ThreadsPerWorker, Cores: cfg.Machine.Cores,
			NetBandwidth: cfg.Machine.NetBandwidth, DiskBandwidth: cfg.Machine.DiskBandwidth,
			StartNS: int64(res.Start), EndNS: int64(res.End),
		}
		logger.Info(fmt.Sprintf("%s on giraph: makespan %v", prog.Name(), res.End.Sub(res.Start)),
			"supersteps", res.Stats.Supersteps, "gcs", res.Stats.GCCount,
			"queue_stalls", res.Stats.QueueStalls)

	case "powergraph":
		cfg := experiments.PowerGraphConfig(*scale, *bug)
		cfg.Workers = *workers
		cfg.ThreadsPerWorker = *threads
		cfg.Parallelism = *parallel
		cfg.Tracer = tracer
		if *noise >= 0 {
			cfg.OSNoiseCores = *noise
		}
		if *serveAddr != "" {
			l, err := startLive(*serveAddr, "powergraph", prog.Name(), cfg.Workers, cfg.ThreadsPerWorker, cfg.Machine, *parallel, *pprofOn, *explainOn, *uiOn, tracer)
			if err != nil {
				fail(err)
			}
			live = l
			cfg.Tee = live.tap.Func()
		}
		res, err := pgsim.Run(prog, cfg)
		if err != nil {
			fail(err)
		}
		run.Log = res.Log
		run.Monitoring, err = cluster.Monitor(res.Cluster, res.Start, res.End, monInterval)
		if err != nil {
			fail(err)
		}
		run.Info = rundir.Info{
			Engine: "powergraph", Job: prog.Name(), Workers: cfg.Workers,
			ThreadsPerWorker: cfg.ThreadsPerWorker, Cores: cfg.Machine.Cores,
			NetBandwidth: cfg.Machine.NetBandwidth, DiskBandwidth: cfg.Machine.DiskBandwidth,
			StartNS: int64(res.Start), EndNS: int64(res.End),
		}
		logger.Info(fmt.Sprintf("%s on powergraph: makespan %v", prog.Name(), res.End.Sub(res.Start)),
			"iterations", res.Stats.Iterations,
			"replication", fmt.Sprintf("%.2f", res.Stats.ReplicationFactor))

	default:
		logger.Error(fmt.Sprintf("unknown engine %q", *engine))
		os.Exit(2)
	}

	if *hosts != "" {
		run.Info.Placement = parsePlacement(*hosts, run.Info.Workers)
	}
	if err := rundir.SaveOpts(*out, run, rundir.SaveOptions{BinaryLog: *binaryLog}); err != nil {
		fail(err)
	}
	logger.Info(fmt.Sprintf("saved %d log events to %s", len(run.Log.Events), *out))
	if live != nil {
		live.finish(run.Monitoring, *linger)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fail(err)
		}
		if err := report.WriteTraceEvents(f, nil, tracer); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		logger.Info("wrote trace", "path", *traceOut, "spans", len(tracer.Spans()))
	}
}

// liveServe bundles the in-process live characterization pipeline: a
// streaming engine fed through a tap on the simulator's logger, served over
// HTTP while the simulation runs.
type liveServe struct {
	engine *stream.Engine
	tap    *stream.Tap
	srv    *http.Server
}

// startLive builds the streaming engine from the same models the batch
// analyzer would resolve for this run, installs the HTTP server, and returns
// the bundle whose tap hook goes into the simulator's Config.Tee. The
// tracer (which may be nil) is shared with the simulator, so one -trace file
// interleaves engine supersteps with analysis window flushes.
func startLive(addr, engineName, job string, workers, threads int, m cluster.MachineSpec, parallel int, pprofOn, explainOn, uiOn bool, tracer *obs.Tracer) (*liveServe, error) {
	models, err := grade10.ModelsForEngine(engineName, grade10.ModelParams{
		Job:              job,
		Cores:            m.Cores,
		NetBandwidth:     m.NetBandwidth,
		DiskBandwidth:    m.DiskBandwidth,
		ThreadsPerWorker: threads,
	})
	if err != nil {
		return nil, err
	}
	resources := 3 // cpu, net-in, net-out
	if m.DiskBandwidth > 0 {
		resources++
	}
	var broker *ui.Broker
	account := &obs.RunAccount{}
	overheadFn := func() []obs.RunOverhead {
		return []obs.RunOverhead{{Run: job, OverheadSnapshot: account.Snapshot()}}
	}
	cfg := stream.Config{
		Models:            models,
		ExpectedInstances: workers * resources,
		RetainForFinal:    true,
		Parallelism:       parallel,
		Tracer:            tracer,
		Explain:           explainOn,
		Account:           account,
	}
	if uiOn {
		broker = ui.NewBroker(0)
		cfg.OnWindowFlush = broker.OnWindowFlush
	}
	se, err := stream.New(cfg)
	if err != nil {
		return nil, err
	}
	handler := stream.NewServer(se)
	if pprofOn {
		handler.EnablePprof()
	}
	handler.Handle("/logs", "recent log records from the flight recorder's ring (?level=&limit=)",
		flight.LogsHandler(logRing))
	handler.Handle("/debug/overhead", "framework overhead accounting for this run (JSON)",
		flight.OverheadHandler(overheadFn))
	reg := obs.NewRegistry()
	obs.RegisterRuntime(reg)
	handler.RegisterEngineMetrics(reg)
	flight.RegisterOverheadMetrics(reg, overheadFn)
	if broker != nil {
		broker.RegisterMetrics(reg)
		uis := ui.NewServer(ui.Config{Engine: se, Broker: broker, Overhead: overheadFn})
		handler.MountUI(uis, uis.Routes())
	}
	handler.SetRegistry(reg)
	ls := &liveServe{
		engine: se,
		tap:    stream.NewTap(se, 0, stream.BlockWhenFull),
		srv:    &http.Server{Addr: addr, Handler: handler},
	}
	go func() {
		if err := ls.srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			logger.Error("live server: " + err.Error())
		}
	}()
	logger.Info("live characterization on " + addr)
	return ls, nil
}

// finish drains the tap, feeds the run's monitoring samples, finalizes the
// exact profile, and keeps serving for the linger duration before shutdown.
func (ls *liveServe) finish(monitoring []cluster.ResourceSamples, linger time.Duration) {
	ls.tap.Close()
	ls.engine.LogDone()
	for _, rs := range monitoring {
		for _, s := range rs.Samples.Samples {
			ls.engine.IngestSample(rs.Machine, rs.Resource, rs.Capacity, s)
		}
	}
	ls.engine.MonitoringDone()
	if _, err := ls.engine.Finalize(); err != nil {
		logger.Error("live finalize: " + err.Error())
	} else if linger > 0 {
		logger.Info(fmt.Sprintf("exact report at /report for %v", linger))
	}
	if linger > 0 {
		time.Sleep(linger)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	_ = ls.srv.Shutdown(ctx)
}

// parsePlacement maps each run-local machine onto a shared host name,
// round-robin over the -hosts list, so co-scheduled runsim invocations can
// declare which physical hosts they contended on.
func parsePlacement(hosts string, workers int) []rundir.Placement {
	var names []string
	for _, h := range strings.Split(hosts, ",") {
		if h = strings.TrimSpace(h); h != "" {
			names = append(names, h)
		}
	}
	if len(names) == 0 {
		return nil
	}
	placement := make([]rundir.Placement, workers)
	for m := 0; m < workers; m++ {
		placement[m] = rundir.Placement{Machine: m, Host: names[m%len(names)]}
	}
	return placement
}

func loadGraph(file, dataset string) (*graph.Graph, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.ReadEdgeList(f)
	}
	for _, d := range workload.Datasets() {
		if d.Name == dataset {
			return d.Graph(), nil
		}
	}
	return nil, fmt.Errorf("unknown dataset %q (have rmat, datagen)", dataset)
}

func fail(err error) {
	logger.Error(err.Error())
	os.Exit(1)
}
