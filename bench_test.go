// Benchmarks regenerating every table and figure of the paper's evaluation
// (§IV), plus ablation micro-benchmarks for the design choices DESIGN.md
// calls out. Run with:
//
//	go test -bench=. -benchmem
//
// The experiment benches report the headline numbers of each figure as
// custom metrics, so a bench run doubles as a reproduction check.
package grade10_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"strings"
	"testing"
	"time"

	"grade10/internal/attribution"
	"grade10/internal/attribution/reference"
	"grade10/internal/bottleneck"
	"grade10/internal/cluster"
	"grade10/internal/core"
	"grade10/internal/dataflowsim"
	"grade10/internal/enginelog"
	"grade10/internal/experiments"
	"grade10/internal/explain"
	"grade10/internal/giraphsim"
	grade10lib "grade10/internal/grade10"
	"grade10/internal/graph"
	"grade10/internal/issues"
	"grade10/internal/metrics"
	"grade10/internal/pgsim"
	"grade10/internal/profstore"
	"grade10/internal/race"
	"grade10/internal/rundir"
	"grade10/internal/stream"
	"grade10/internal/vertexprog"
	"grade10/internal/vtime"
	"grade10/internal/workload"
)

// BenchmarkFigure2WorkedExample regenerates the paper's §III-D constructed
// example through the real attribution pipeline.
func BenchmarkFigure2WorkedExample(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.Consumption["r2"][2], "r2-slice2-%")
			b.ReportMetric(r.Consumption["r2"][3], "r2-slice3-%")
		}
	}
}

// BenchmarkTable2Upsampling regenerates Table II: upsampling error versus
// monitoring granularity for three system configurations.
func BenchmarkTable2Upsampling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.Ratio == 64 {
					b.ReportMetric(r.Grade10Error*100, r.System+"-err64x-%")
				}
			}
		}
	}
}

// BenchmarkFig3AttributionRules regenerates Figure 3: the effect of tuned
// attribution rules on the Compute phase's demand estimate and bottleneck
// flags.
func BenchmarkFig3AttributionRules(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			count := func(pts []experiments.Fig3Point) float64 {
				n := 0.0
				for _, p := range pts {
					if p.Bottlenecked {
						n++
					}
				}
				return n
			}
			b.ReportMetric(count(r.Tuned), "tuned-btl-slices")
			b.ReportMetric(count(r.Untuned), "untuned-btl-slices")
		}
	}
}

// BenchmarkFig4Bottlenecks regenerates Figure 4: bottleneck impact across
// the eight workloads on both engines.
func BenchmarkFig4Bottlenecks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure4()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			maxCPU, maxGC := 0.0, 0.0
			for _, r := range rows {
				if r.System == "giraph" && r.Resource == "cpu" && r.Impact > maxCPU {
					maxCPU = r.Impact
				}
				if r.Resource == "gc" && r.Impact > maxGC {
					maxGC = r.Impact
				}
			}
			b.ReportMetric(maxCPU*100, "giraph-max-cpu-%")
			b.ReportMetric(maxGC*100, "giraph-max-gc-%")
		}
	}
}

// BenchmarkFig5Imbalance regenerates Figure 5: imbalance impact across the
// five PowerGraph phase types for the eight workloads.
func BenchmarkFig5Imbalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure5()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			maxGather := 0.0
			for _, r := range rows {
				if r.PhaseType == "gather" && r.Impact > maxGather {
					maxGather = r.Impact
				}
			}
			b.ReportMetric(maxGather*100, "max-gather-imbalance-%")
		}
	}
}

// BenchmarkFig6SyncBug regenerates Figure 6: straggler detection exposing
// the injected PowerGraph synchronization bug.
func BenchmarkFig6SyncBug(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure6()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.StepSlowdown, "step-slowdown-x")
			b.ReportMetric(float64(r.AffectedSteps)/float64(r.TotalSteps)*100, "affected-steps-%")
		}
	}
}

// --- Ablation and substrate micro-benchmarks ---

func analyzerFixture(b testing.TB) (*core.ExecutionTrace, *core.ResourceTrace,
	*core.RuleSet, core.Timeslices) {
	b.Helper()
	cfg := giraphsim.DefaultConfig()
	cfg.Workers = 4
	run, err := workload.RunGiraph(workload.Spec{
		Dataset:   workload.Dataset{Name: "bench", Gen: func() *graph.Graph { return graph.RMAT(11, 8, 42) }},
		Algorithm: "pagerank"}, cfg)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := core.BuildExecutionTrace(run.Result.Log, run.Models.Exec)
	if err != nil {
		b.Fatal(err)
	}
	mon, err := cluster.Monitor(run.Result.Cluster, run.Result.Start, run.Result.End,
		50*vtime.Millisecond)
	if err != nil {
		b.Fatal(err)
	}
	rt := core.NewResourceTrace()
	for _, rs := range mon {
		res := run.Models.Res.Lookup(rs.Resource)
		if res == nil {
			continue
		}
		if err := rt.Add(res, rs.Machine, rs.Samples); err != nil {
			b.Fatal(err)
		}
	}
	slices := core.NewTimeslices(tr.Start, tr.End, 10*vtime.Millisecond)
	return tr, rt, run.Models.Rules, slices
}

// BenchmarkAttribution measures the core attribution pipeline (demand
// estimation, upsampling, per-phase attribution) on a real trace.
func BenchmarkAttribution(b *testing.B) {
	tr, rt, rules, slices := analyzerFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := attribution.Attribute(tr, rt, rules, slices); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBottleneckDetection measures §III-E detection on a real profile.
func BenchmarkBottleneckDetection(b *testing.B) {
	tr, rt, rules, slices := analyzerFixture(b)
	prof, err := attribution.Attribute(tr, rt, rules, slices)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bottleneck.Detect(prof, bottleneck.DefaultConfig())
	}
}

// BenchmarkReplaySimulator measures the §III-F trace replay.
func BenchmarkReplaySimulator(b *testing.B) {
	tr, _, _, _ := analyzerFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		issues.Replay(tr, nil)
	}
}

// BenchmarkGiraphEngine measures the BSP engine simulation end to end.
func BenchmarkGiraphEngine(b *testing.B) {
	g := graph.RMAT(11, 8, 42)
	cfg := giraphsim.DefaultConfig()
	cfg.Workers = 4
	part := graph.HashPartition(g, cfg.Workers)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := giraphsim.Run(vertexprog.NewPageRank(g, 0.85, 5), part, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPowerGraphEngine measures the GAS engine simulation end to end.
func BenchmarkPowerGraphEngine(b *testing.B) {
	g := graph.RMAT(11, 8, 42)
	cfg := pgsim.DefaultConfig()
	cfg.Workers = 4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pgsim.Run(vertexprog.NewPageRank(g, 0.85, 5), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGreedyVertexCut measures the partitioner against the graph size.
func BenchmarkGreedyVertexCut(b *testing.B) {
	g := graph.RMAT(14, 16, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vc := graph.GreedyVertexCut(g, 16)
		if i == 0 {
			b.ReportMetric(vc.ReplicationFactor(), "replication-factor")
		}
	}
}

// --- Ablations ---

// BenchmarkAblationTimesliceWidth sweeps the analysis granularity: the
// paper's §III-C notes the timeslice duration controls how fine-grained the
// analysis is; this shows its cost.
func BenchmarkAblationTimesliceWidth(b *testing.B) {
	for _, width := range []vtime.Duration{5 * vtime.Millisecond,
		10 * vtime.Millisecond, 50 * vtime.Millisecond} {
		b.Run(width.String(), func(b *testing.B) {
			tr, rt, rules, _ := analyzerFixture(b)
			slices := core.NewTimeslices(tr.Start, tr.End, width)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := attribution.Attribute(tr, rt, rules, slices); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPartitioner compares hash and range edge-cut partitioning
// on the BSP engine, reporting the resulting makespans. (The community
// generator deliberately shuffles vertex ids, so neither strategy gets
// trivially aligned communities; differences come from degree placement.)
func BenchmarkAblationPartitioner(b *testing.B) {
	g := graph.Community(graph.CommunityParams{
		Vertices: 2048, Communities: 16, IntraDegree: 5, InterFraction: 0.03, Seed: 2,
	})
	cfg := giraphsim.DefaultConfig()
	cfg.Workers = 4
	for _, strat := range []string{"hash", "range"} {
		b.Run(strat, func(b *testing.B) {
			var part *graph.Partition
			if strat == "hash" {
				part = graph.HashPartition(g, cfg.Workers)
			} else {
				part = graph.RangePartition(g, cfg.Workers)
			}
			for i := 0; i < b.N; i++ {
				res, err := giraphsim.Run(vertexprog.NewPageRank(g, 0.85, 4), part, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(res.End.Seconds()*1000, "makespan-ms")
				}
			}
		})
	}
}

// BenchmarkAblationUpsamplingRatio measures how reconstruction error scales
// with the monitoring ratio on a live profile (the Table II mechanism as a
// single-run metric).
func BenchmarkAblationUpsamplingRatio(b *testing.B) {
	cfg := giraphsim.DefaultConfig()
	cfg.Workers = 2
	run, err := workload.RunGiraph(workload.Spec{
		Dataset:   workload.Dataset{Name: "bench-upsample", Gen: func() *graph.Graph { return graph.RMAT(11, 8, 5) }},
		Algorithm: "pagerank"}, cfg)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := core.BuildExecutionTrace(run.Result.Log, run.Models.Exec)
	if err != nil {
		b.Fatal(err)
	}
	exact, err := run.Result.Cluster.GroundTruth(0, cluster.ResCPU)
	if err != nil {
		b.Fatal(err)
	}
	ground := metrics.SampleSeriesOf(exact, tr.Start, tr.End, 10*vtime.Millisecond)
	truth := ground.ToSeries()
	cpuRes := run.Models.Res.Lookup(cluster.ResCPU)
	slices := core.NewTimeslices(tr.Start, tr.End, 10*vtime.Millisecond)
	for _, ratio := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("%dx", ratio), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rt := core.NewResourceTrace()
				if err := rt.Add(cpuRes, 0, ground.Downsample(ratio)); err != nil {
					b.Fatal(err)
				}
				prof, err := attribution.Attribute(tr, rt, run.Models.Rules, slices)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					up := prof.Get(cluster.ResCPU, 0).UpsampledSeries(slices)
					e := metrics.RelativeError(up, truth, tr.Start, tr.End, 10*vtime.Millisecond)
					b.ReportMetric(e*100, "error-%")
				}
			}
		})
	}
}

// --- Streaming (live characterization) benchmarks ---

// BenchmarkWindowedAttribution measures the incremental path the streaming
// engine takes — attribution.AttributeWindow over fixed windows of
// timeslices — on the exact workload BenchmarkAttribution analyzes in one
// shot, making the two directly comparable: windowing bounds the per-flush
// cost (what lets the live service keep up with a running job) while total
// work stays within a small factor of the batch pass.
func BenchmarkWindowedAttribution(b *testing.B) {
	tr, rt, rules, slices := analyzerFixture(b)
	leaves := tr.Leaves()
	const windowSlices = 16
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for s := 0; s < slices.Count; s += windowSlices {
			w0 := slices.Start.Add(vtime.Duration(s) * slices.Width)
			w1 := vtime.Min(w0.Add(vtime.Duration(windowSlices)*slices.Width), slices.End)
			win := core.NewTimeslices(w0, w1, slices.Width)
			var overlap []*core.Phase
			for _, p := range leaves {
				if p.Start < w1 && p.End > w0 {
					overlap = append(overlap, p)
				}
			}
			wtr := &core.ExecutionTrace{Root: tr.Root, Start: w0, End: w1}
			if _, err := attribution.AttributeWindow(wtr, overlap, rt, rules, win); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkStreamIngest measures the full streaming engine end to end in
// bounded-memory mode: parsing serialized log and monitoring text, building
// the live phase tree, and flushing incremental windows — the cost a live
// deployment pays per byte of run output.
func BenchmarkStreamIngest(b *testing.B) {
	cfg := giraphsim.DefaultConfig()
	cfg.Workers = 4
	run, err := workload.RunGiraph(workload.Spec{
		Dataset:   workload.Dataset{Name: "bench-stream", Gen: func() *graph.Graph { return graph.RMAT(11, 8, 42) }},
		Algorithm: "pagerank"}, cfg)
	if err != nil {
		b.Fatal(err)
	}
	mon, err := cluster.Monitor(run.Result.Cluster, run.Result.Start, run.Result.End,
		10*vtime.Millisecond)
	if err != nil {
		b.Fatal(err)
	}
	var logBuf, monBuf bytes.Buffer
	if err := enginelog.Write(&logBuf, run.Result.Log); err != nil {
		b.Fatal(err)
	}
	if err := rundir.WriteMonitoring(&monBuf, mon); err != nil {
		b.Fatal(err)
	}
	logLines := strings.Split(strings.TrimRight(logBuf.String(), "\n"), "\n")
	monLines := strings.Split(strings.TrimRight(monBuf.String(), "\n"), "\n")
	b.SetBytes(int64(logBuf.Len() + monBuf.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := stream.New(stream.Config{
			Models: run.Models, ExpectedInstances: len(mon),
			Timeslice: vtime.Millisecond, WindowSlices: 8,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, line := range logLines {
			eng.IngestLine(line)
		}
		eng.LogDone()
		for _, line := range monLines {
			eng.IngestMonitoringLine(line)
		}
		eng.MonitoringDone()
		if _, err := eng.Finalize(); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(eng.Stats().WindowsFlushed), "windows")
		}
	}
}

// BenchmarkEnginelogParse decodes the same fixture log from both on-disk
// formats; MB/s is over the encoded size, so the binary side reflects both
// the smaller encoding and the cheaper decode.
func BenchmarkEnginelogParse(b *testing.B) {
	cfg := giraphsim.DefaultConfig()
	cfg.Workers = 4
	run, err := workload.RunGiraph(workload.Spec{
		Dataset:   workload.Dataset{Name: "bench-parse", Gen: func() *graph.Graph { return graph.RMAT(11, 8, 42) }},
		Algorithm: "pagerank"}, cfg)
	if err != nil {
		b.Fatal(err)
	}
	var textBuf, binBuf bytes.Buffer
	if err := enginelog.Write(&textBuf, run.Result.Log); err != nil {
		b.Fatal(err)
	}
	if err := enginelog.WriteBinary(&binBuf, run.Result.Log); err != nil {
		b.Fatal(err)
	}
	b.Run("format=text", func(b *testing.B) {
		b.SetBytes(int64(textBuf.Len()))
		for i := 0; i < b.N; i++ {
			if _, _, err := enginelog.ReadStats(bytes.NewReader(textBuf.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("format=binary", func(b *testing.B) {
		b.SetBytes(int64(binBuf.Len()))
		for i := 0; i < b.N; i++ {
			if _, _, _, err := enginelog.ReadStatsAny(bytes.NewReader(binBuf.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAttributionColumnar compares the columnar core against the frozen
// row-based oracle in internal/attribution/reference, both serial. The two
// produce bit-identical profiles (see the reference equivalence tests); only
// wall-clock and allocations should differ.
func BenchmarkAttributionColumnar(b *testing.B) {
	tr, rt, rules, slices := analyzerFixture(b)
	leaves := tr.Leaves()
	b.Run("impl=reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := reference.Attribute(leaves, rt, rules, slices, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("impl=columnar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := attribution.AttributeWindowProv(tr, leaves, rt, rules,
				slices, 1, nil, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Serial vs parallel pipeline benchmarks ---

// benchWorkerCounts are the pool sizes the parallel benchmarks sweep.
// workers=1 is the serial baseline (par.Do runs inline, no goroutines).
var benchWorkerCounts = []int{1, 2, 4, 8}

// BenchmarkAttributionParallel measures the attribution fan-out across
// (resource, machine) instances at increasing pool sizes. Output is
// byte-identical at every width (see TestPipelineParallelReportBitIdentical);
// only wall-clock should move.
func BenchmarkAttributionParallel(b *testing.B) {
	tr, rt, rules, slices := analyzerFixture(b)
	for _, w := range benchWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := attribution.AttributeN(tr, rt, rules, slices, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAttributionProvenance measures the cost of provenance capture:
// the same attribution pass with the explain recorder off (nil — the default
// for every caller that did not opt in) and on. The off case must track
// BenchmarkAttribution; the on case pays for the columnar shard appends.
func BenchmarkAttributionProvenance(b *testing.B) {
	tr, rt, rules, slices := analyzerFixture(b)
	leaves := tr.Leaves()
	b.Run("recorder=off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := attribution.AttributeWindowProv(tr, leaves, rt, rules,
				slices, 0, nil, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("recorder=on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := attribution.AttributeWindowProv(tr, leaves, rt, rules,
				slices, 0, nil, explain.NewRecorder(0)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestAttributionNilRecorderZeroAlloc is the zero-overhead guard for the
// provenance hooks: attribution with a nil recorder must allocate exactly
// what the pre-provenance baseline (AttributeN) allocates — the hooks are
// nil-guarded branches, never allocation sites.
func TestAttributionNilRecorderZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("full attribution pass; skipped with -short")
	}
	if race.Enabled {
		t.Skip("race mode randomly bypasses sync.Pool; alloc counts are nondeterministic")
	}
	tr, rt, rules, slices := analyzerFixture(t)
	// A GC cycle mid-measurement flushes attribution's scratch pools and
	// shows up as phantom allocations; hold it off while comparing.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	base := func() {
		if _, err := attribution.AttributeN(tr, rt, rules, slices, 1); err != nil {
			t.Fatal(err)
		}
	}
	// Mirror AttributeN exactly (including the tr.Leaves() call) so the only
	// difference is the explicit nil recorder argument.
	withNil := func() {
		if _, err := attribution.AttributeWindowProv(tr, tr.Leaves(), rt, rules,
			slices, 1, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	base()
	withNil() // warm the scratch pools on both paths before measuring
	baseline := testing.AllocsPerRun(5, base)
	nilRec := testing.AllocsPerRun(5, withNil)
	if added := nilRec - baseline; added > 0 {
		t.Fatalf("nil recorder added %.1f allocs/op over baseline (%.1f vs %.1f)",
			added, nilRec, baseline)
	}
}

// BenchmarkIssueReplayParallel measures the §III-F candidate replays — one
// full trace re-simulation per bottleneck-removal or imbalance candidate —
// distributed over the worker pool.
func BenchmarkIssueReplayParallel(b *testing.B) {
	tr, rt, rules, slices := analyzerFixture(b)
	prof, err := attribution.Attribute(tr, rt, rules, slices)
	if err != nil {
		b.Fatal(err)
	}
	btl := bottleneck.Detect(prof, bottleneck.DefaultConfig())
	for _, w := range benchWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			cfg := issues.DefaultConfig()
			cfg.Parallelism = w
			for i := 0; i < b.N; i++ {
				issues.Analyze(prof, btl, cfg)
			}
		})
	}
}

// BenchmarkSuperstepParallel measures the BSP engine with the host-side
// per-partition superstep precompute fanned out over the pool. Virtual time
// and the engine log are unaffected (see giraphsim's determinism guard).
func BenchmarkSuperstepParallel(b *testing.B) {
	g := graph.RMAT(11, 8, 42)
	for _, w := range benchWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			cfg := giraphsim.DefaultConfig()
			cfg.Workers = 4
			cfg.Parallelism = w
			part := graph.HashPartition(g, cfg.Workers)
			for i := 0; i < b.N; i++ {
				if _, err := giraphsim.Run(vertexprog.NewPageRank(g, 0.85, 5), part, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestWriteBenchPipeline is the perf-trajectory harness: set
// GRADE10_WRITE_BENCH=1 to time the serial and parallel pipeline stages and
// write the results (with honest host-core counts — speedup requires real
// cores) to BENCH_pipeline.json for comparison across PRs.
//
// The bench rides through profstore: the fixture run is characterized and
// archived (GRADE10_BENCH_STORE names the store directory; default a temp
// dir) with the stage timings attached as Record.Bench, and the JSON gains
// the archived run_id — so `grade10 -diff` between two bench records shows
// the wall-clock trajectory next to the simulated-profile deltas. Timings
// are host-dependent and excluded from the content ID: on a 1-core host all
// speedups read ~1x, which says nothing about the pipeline's scalability.
//
//	GRADE10_WRITE_BENCH=1 go test -run TestWriteBenchPipeline -count=1 .
func TestWriteBenchPipeline(t *testing.T) {
	if os.Getenv("GRADE10_WRITE_BENCH") == "" {
		t.Skip("set GRADE10_WRITE_BENCH=1 to write BENCH_pipeline.json")
	}
	fixCfg := giraphsim.DefaultConfig()
	fixCfg.Workers = 4
	fixRun, err := workload.RunGiraph(workload.Spec{
		Dataset:   workload.Dataset{Name: "bench", Gen: func() *graph.Graph { return graph.RMAT(11, 8, 42) }},
		Algorithm: "pagerank"}, fixCfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, rt, rules, slices := analyzerFixture(t)
	prof, err := attribution.Attribute(tr, rt, rules, slices)
	if err != nil {
		t.Fatal(err)
	}
	btl := bottleneck.Detect(prof, bottleneck.DefaultConfig())

	type stage struct {
		Name    string             `json:"name"`
		NsPerOp map[string]float64 `json:"ns_per_op"` // key: workers=N
		Speedup map[string]float64 `json:"speedup"`   // vs workers=1
	}
	timeStage := func(name string, run func(workers int)) stage {
		s := stage{Name: name, NsPerOp: map[string]float64{}, Speedup: map[string]float64{}}
		for _, w := range benchWorkerCounts {
			w := w
			r := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					run(w)
				}
			})
			s.NsPerOp[fmt.Sprintf("workers=%d", w)] = float64(r.NsPerOp())
		}
		base := s.NsPerOp["workers=1"]
		for k, ns := range s.NsPerOp {
			s.Speedup[k] = base / ns
		}
		return s
	}

	// timeConfigs times arbitrary labeled configurations of one stage, with
	// speedup relative to baseKey (timeStage is the workers=N specialization).
	type config struct {
		key string
		run func()
	}
	timeConfigs := func(name, baseKey string, configs []config) stage {
		s := stage{Name: name, NsPerOp: map[string]float64{}, Speedup: map[string]float64{}}
		for _, c := range configs {
			c := c
			r := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					c.run()
				}
			})
			s.NsPerOp[c.key] = float64(r.NsPerOp())
		}
		base := s.NsPerOp[baseKey]
		for k, ns := range s.NsPerOp {
			s.Speedup[k] = base / ns
		}
		return s
	}

	// Both serializations of the fixture log, for the parse stage.
	var textLog, binLog bytes.Buffer
	if err := enginelog.Write(&textLog, fixRun.Result.Log); err != nil {
		t.Fatal(err)
	}
	if err := enginelog.WriteBinary(&binLog, fixRun.Result.Log); err != nil {
		t.Fatal(err)
	}

	leaves := tr.Leaves()
	stages := []stage{
		timeStage("attribution", func(w int) {
			if _, err := attribution.AttributeN(tr, rt, rules, slices, w); err != nil {
				t.Fatal(err)
			}
		}),
		timeStage("issue_replay", func(w int) {
			cfg := issues.DefaultConfig()
			cfg.Parallelism = w
			issues.Analyze(prof, btl, cfg)
		}),
		// Provenance capture cost: nil recorder (the default) vs the explain
		// recorder. Speedup under 1x on recorder=on is the price of evidence.
		timeConfigs("attribution_provenance", "recorder=off", []config{
			{"recorder=off", func() {
				if _, err := attribution.AttributeWindowProv(tr, leaves, rt, rules,
					slices, 0, nil, nil); err != nil {
					t.Fatal(err)
				}
			}},
			{"recorder=on", func() {
				if _, err := attribution.AttributeWindowProv(tr, leaves, rt, rules,
					slices, 0, nil, explain.NewRecorder(0)); err != nil {
					t.Fatal(err)
				}
			}},
		}),
		// Enginelog decode: the same fixture log in both on-disk formats.
		// Binary regressing below text speed fails the harness (see below).
		timeConfigs("enginelog_parse", "format=text", []config{
			{"format=text", func() {
				if _, _, err := enginelog.ReadStats(bytes.NewReader(textLog.Bytes())); err != nil {
					t.Fatal(err)
				}
			}},
			{"format=binary", func() {
				if _, _, _, err := enginelog.ReadStatsAny(bytes.NewReader(binLog.Bytes())); err != nil {
					t.Fatal(err)
				}
			}},
		}),
		// Columnar attribution core vs the frozen row-based oracle, both
		// serial, so the delta is layout/pooling rather than parallelism.
		timeConfigs("attribution_columnar", "impl=reference", []config{
			{"impl=reference", func() {
				if _, err := reference.Attribute(leaves, rt, rules, slices, nil); err != nil {
					t.Fatal(err)
				}
			}},
			{"impl=columnar", func() {
				if _, err := attribution.AttributeWindowProv(tr, leaves, rt, rules,
					slices, 1, nil, nil); err != nil {
					t.Fatal(err)
				}
			}},
		}),
	}

	// The binary format exists to be faster; a bench run where it is not is a
	// regression, and CI runs this harness as its bench smoke.
	for _, s := range stages {
		if s.Name != "enginelog_parse" {
			continue
		}
		txt, bin := s.NsPerOp["format=text"], s.NsPerOp["format=binary"]
		if bin >= txt {
			t.Errorf("binary enginelog decode (%.0f ns/op) not faster than text (%.0f ns/op)", bin, txt)
		}
	}

	// Archive the characterized fixture run with the stage timings attached,
	// so the bench trajectory is diffable like any other archived profile.
	mon, err := cluster.Monitor(fixRun.Result.Cluster, fixRun.Result.Start,
		fixRun.Result.End, 50*vtime.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	charOut, err := grade10lib.Characterize(grade10lib.Input{
		Log: fixRun.Result.Log, Monitoring: mon, Models: fixRun.Models,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := profstore.BuildRecord(rundir.Info{
		Engine: "giraph", Job: "pagerank", Workers: fixCfg.Workers,
		ThreadsPerWorker: fixCfg.ThreadsPerWorker, Cores: fixCfg.Machine.Cores,
		NetBandwidth: fixCfg.Machine.NetBandwidth, DiskBandwidth: fixCfg.Machine.DiskBandwidth,
		StartNS: int64(fixRun.Result.Start), EndNS: int64(fixRun.Result.End),
	}, charOut)
	rec.Label = "bench-pipeline"
	for _, s := range stages {
		rec.Bench = append(rec.Bench, profstore.BenchStage{Name: s.Name, NsPerOp: s.NsPerOp})
	}
	storeDir := os.Getenv("GRADE10_BENCH_STORE")
	if storeDir == "" {
		storeDir = t.TempDir()
	}
	store, err := profstore.Open(storeDir, profstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	meta, _, err := store.Put(rec)
	if err != nil {
		t.Fatal(err)
	}

	out := struct {
		Date       string  `json:"date"`
		RunID      string  `json:"run_id"`
		HostCPUs   int     `json:"host_cpus"`
		GoMaxProcs int     `json:"gomaxprocs"`
		Note       string  `json:"note"`
		Stages     []stage `json:"stages"`
	}{
		Date:       time.Now().UTC().Format("2006-01-02"),
		RunID:      meta.ID,
		HostCPUs:   runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Note: "speedup is relative to workers=1 on this host; " +
			"parallel gains need host_cpus > 1 (a 1-core host honestly reads ~1x). " +
			"run_id is the profstore content ID of the archived fixture profile " +
			"(timings ride as Record.Bench, excluded from the ID).",
		Stages: stages,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_pipeline.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_pipeline.json (host_cpus=%d, run_id=%s)", out.HostCPUs, meta.ID)
}

// BenchmarkDataflowEngine measures the Spark-like extension engine.
func BenchmarkDataflowEngine(b *testing.B) {
	job := dataflowsim.Job{
		Name: "bench", InputRows: 100_000,
		Stages: []dataflowsim.StageSpec{
			{Tasks: 32, CostPerRow: 2e-6, Selectivity: 1, ShuffleSkew: 0.8},
			{Tasks: 32, CostPerRow: 4e-6, Selectivity: 0.3},
		},
	}
	cfg := dataflowsim.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dataflowsim.Run(job, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
